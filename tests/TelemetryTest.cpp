//===- tests/TelemetryTest.cpp - Metrics and tracer tests ---------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the telemetry subsystem: the armed mask, counter/gauge
/// disarmed no-ops, histogram edge cases (empty, single sample, saturating
/// overflow bucket, 8-thread concurrent recording), registry JSON shape,
/// the span tracer ring, and the StageTimer stage instrument.
///
//===----------------------------------------------------------------------===//

#include "telemetry/Metrics.h"
#include "telemetry/Trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

using namespace spl;

namespace {

/// Arms metrics (and optionally tracing) for one test, restoring the fully
/// disarmed state afterwards so tests compose in any order.
struct ArmedScope {
  explicit ArmedScope(bool Metrics = true, bool Trace = false) {
    telemetry::setMetricsEnabled(Metrics);
    telemetry::setTracingEnabled(Trace);
  }
  ~ArmedScope() {
    telemetry::setMetricsEnabled(false);
    telemetry::setTracingEnabled(false);
    telemetry::resetAllMetrics();
    telemetry::resetTrace();
  }
};

TEST(Telemetry, DisarmedCounterIsANoOp) {
  telemetry::setMetricsEnabled(false);
  telemetry::Counter C;
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 0u);

  telemetry::Gauge G;
  G.set(7);
  G.add(3);
  EXPECT_EQ(G.value(), 0);

  telemetry::Histogram H;
  H.record(123);
  EXPECT_EQ(H.snapshot().Count, 0u);
}

TEST(Telemetry, ArmedCounterAccumulates) {
  ArmedScope Armed;
  telemetry::Counter C;
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);

  telemetry::Gauge G;
  G.set(7);
  G.add(-3);
  EXPECT_EQ(G.value(), 4);
}

TEST(Telemetry, SetterFlagsComposeIndependently) {
  telemetry::setMetricsEnabled(true);
  telemetry::setTracingEnabled(false);
  EXPECT_TRUE(telemetry::metricsEnabled());
  EXPECT_FALSE(telemetry::tracingEnabled());
  EXPECT_TRUE(telemetry::active());

  telemetry::setMetricsEnabled(false);
  telemetry::setTracingEnabled(true);
  EXPECT_FALSE(telemetry::metricsEnabled());
  EXPECT_TRUE(telemetry::tracingEnabled());
  EXPECT_TRUE(telemetry::active());

  telemetry::setTracingEnabled(false);
  EXPECT_FALSE(telemetry::active());
  telemetry::resetTrace();
}

TEST(Histogram, EmptySnapshot) {
  telemetry::Histogram H;
  telemetry::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.Sum, 0u);
  EXPECT_EQ(S.Min, 0u); // Not the internal UINT64_MAX sentinel.
  EXPECT_EQ(S.Max, 0u);
  EXPECT_EQ(S.p50(), 0u);
  EXPECT_EQ(S.p95(), 0u);
  EXPECT_EQ(S.p99(), 0u);
}

TEST(Histogram, SingleSample) {
  ArmedScope Armed;
  telemetry::Histogram H;
  H.record(1500);
  telemetry::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(S.Sum, 1500u);
  EXPECT_EQ(S.Min, 1500u);
  EXPECT_EQ(S.Max, 1500u);
  // Every quantile of a one-sample distribution is that sample (the bucket
  // upper bound is clamped to the observed Max).
  EXPECT_EQ(S.p50(), 1500u);
  EXPECT_EQ(S.p95(), 1500u);
  EXPECT_EQ(S.p99(), 1500u);
}

TEST(Histogram, ZeroSampleLandsInBucketZero) {
  ArmedScope Armed;
  telemetry::Histogram H;
  H.record(0);
  telemetry::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 1u);
  EXPECT_EQ(S.Buckets[0], 1u);
  EXPECT_EQ(S.p50(), 0u);
}

TEST(Histogram, BucketIndexing) {
  using H = telemetry::Histogram;
  EXPECT_EQ(H::bucketIndex(0), 0);
  EXPECT_EQ(H::bucketIndex(1), 1);
  EXPECT_EQ(H::bucketIndex(2), 2);
  EXPECT_EQ(H::bucketIndex(3), 2);
  EXPECT_EQ(H::bucketIndex(4), 3);
  EXPECT_EQ(H::bucketIndex(1023), 10);
  EXPECT_EQ(H::bucketIndex(1024), 11);
  // The top of the range saturates into the last bucket.
  EXPECT_EQ(H::bucketIndex(UINT64_MAX), H::NumBuckets - 1);
  EXPECT_EQ(H::bucketIndex(std::uint64_t(1) << 63), H::NumBuckets - 1);
}

TEST(Histogram, SaturatingOverflowBucket) {
  ArmedScope Armed;
  telemetry::Histogram H;
  // All three are wider than the second-to-last bucket; they must pile into
  // the final (saturating) bucket rather than be dropped.
  H.record(UINT64_MAX);
  H.record(std::uint64_t(1) << 63);
  H.record((std::uint64_t(1) << 63) + 12345);
  telemetry::HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_EQ(S.Buckets[telemetry::Histogram::NumBuckets - 1], 3u);
  EXPECT_EQ(S.Max, UINT64_MAX);
  EXPECT_EQ(S.Min, std::uint64_t(1) << 63);
  // Quantiles resolve to the saturating bucket, clamped to the real max.
  EXPECT_EQ(S.p99(), UINT64_MAX);
  EXPECT_EQ(
      telemetry::HistogramSnapshot::bucketUpperBound(
          telemetry::Histogram::NumBuckets - 1),
      UINT64_MAX);
}

TEST(Histogram, ConcurrentRecordingFromEightThreads) {
  ArmedScope Armed;
  telemetry::Histogram H;
  constexpr int NumThreads = 8;
  constexpr std::uint64_t PerThread = 1000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&H] {
      for (std::uint64_t V = 1; V <= PerThread; ++V)
        H.record(V);
    });
  for (auto &T : Threads)
    T.join();

  telemetry::HistogramSnapshot S = H.snapshot();
  // Deterministic totals: every sample lands exactly once whatever the
  // interleaving.
  EXPECT_EQ(S.Count, NumThreads * PerThread);
  EXPECT_EQ(S.Sum, NumThreads * (PerThread * (PerThread + 1) / 2));
  EXPECT_EQ(S.Min, 1u);
  EXPECT_EQ(S.Max, PerThread);
  std::uint64_t BucketTotal = 0;
  for (std::uint64_t B : S.Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, S.Count);
}

TEST(Registry, InstrumentsHaveStableIdentity) {
  telemetry::Counter &A = telemetry::counter("test.registry.stable");
  telemetry::Counter &B = telemetry::counter("test.registry.stable");
  EXPECT_EQ(&A, &B);
  EXPECT_NE(&A, &telemetry::counter("test.registry.other"));
}

TEST(Registry, JsonShape) {
  ArmedScope Armed;
  telemetry::counter("test.json.counter").add(3);
  telemetry::gauge("test.json.gauge").set(-5);
  telemetry::histogram("test.json.hist").record(100);

  std::string J = telemetry::metricsJson();
  EXPECT_NE(J.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(J.find("\"test.json.counter\":3"), std::string::npos);
  EXPECT_NE(J.find("\"test.json.gauge\":-5"), std::string::npos);
  EXPECT_NE(J.find("\"test.json.hist\":{\"count\":1"), std::string::npos);
  // Histogram buckets serialize as [lower_bound, count] pairs.
  EXPECT_NE(J.find("\"buckets\":[[64,1]]"), std::string::npos);
}

TEST(Registry, ResetAllZeroesEverything) {
  ArmedScope Armed;
  telemetry::Counter &C = telemetry::counter("test.reset.counter");
  telemetry::Histogram &H = telemetry::histogram("test.reset.hist");
  C.add(9);
  H.record(9);
  telemetry::resetAllMetrics();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(H.snapshot().Count, 0u);
}

TEST(Registry, ProfileTableListsActiveHistograms) {
  ArmedScope Armed;
  telemetry::histogram("test.profile.stage_ns").record(2048);
  telemetry::counter("test.profile.events").add(4);
  std::string Table = telemetry::profileTable();
  EXPECT_NE(Table.find("test.profile.stage_ns"), std::string::npos);
  EXPECT_NE(Table.find("test.profile.events"), std::string::npos);
  // Zero-count histograms stay out of the table.
  telemetry::histogram("test.profile.silent_ns");
  EXPECT_EQ(telemetry::profileTable().find("test.profile.silent_ns"),
            std::string::npos);
}

TEST(Tracer, DisarmedSpanRecordsNothing) {
  telemetry::setTracingEnabled(false);
  telemetry::resetTrace();
  { telemetry::Span S("should-not-appear"); }
  EXPECT_EQ(telemetry::Tracer::instance().recorded(), 0u);
}

TEST(Tracer, SpansExportAsChromeTracingJson) {
  ArmedScope Armed(/*Metrics=*/false, /*Trace=*/true);
  { telemetry::Span S("outer"); }
  { telemetry::Span S("inner"); }
  EXPECT_EQ(telemetry::Tracer::instance().recorded(), 2u);

  std::string J = telemetry::traceJson();
  ASSERT_FALSE(J.empty());
  EXPECT_EQ(J.front(), '[');
  EXPECT_NE(J.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\":"), std::string::npos);
  EXPECT_NE(J.find("\"dur\":"), std::string::npos);
}

TEST(Tracer, RingKeepsOnlyTheNewestCapacityEvents) {
  ArmedScope Armed(/*Metrics=*/false, /*Trace=*/true);
  telemetry::Tracer &T = telemetry::Tracer::instance();
  const std::uint64_t Extra = 10;
  for (std::uint64_t I = 0; I != telemetry::Tracer::Capacity + Extra; ++I)
    T.record("spin", 0, 1);
  EXPECT_EQ(T.recorded(), telemetry::Tracer::Capacity + Extra);

  // The export holds exactly one ring's worth — the oldest Extra are gone.
  std::string J = T.toJson();
  size_t Events = 0;
  for (size_t Pos = J.find("\"name\""); Pos != std::string::npos;
       Pos = J.find("\"name\"", Pos + 1))
    ++Events;
  EXPECT_EQ(Events, telemetry::Tracer::Capacity);
}

TEST(StageTimer, RecordsBothHistogramAndSpan) {
  ArmedScope Armed(/*Metrics=*/true, /*Trace=*/true);
  telemetry::Histogram H;
  { telemetry::StageTimer T("stage-under-test", &H); }
  EXPECT_EQ(H.snapshot().Count, 1u);
  EXPECT_NE(telemetry::traceJson().find("stage-under-test"),
            std::string::npos);
}

TEST(StageTimer, FullyDisarmedIsSilent) {
  telemetry::setMetricsEnabled(false);
  telemetry::setTracingEnabled(false);
  telemetry::resetTrace();
  telemetry::Histogram H;
  { telemetry::StageTimer T("silent-stage", &H); }
  EXPECT_EQ(H.snapshot().Count, 0u);
  EXPECT_EQ(telemetry::Tracer::instance().recorded(), 0u);
}

} // namespace
