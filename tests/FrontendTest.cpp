//===- tests/FrontendTest.cpp - Lexer and parser tests ----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Builder.h"
#include "support/StrUtil.h"
#include "templates/Registry.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace spl;

namespace {

TEST(Lexer, BasicTokens) {
  Diagnostics Diags;
  auto Toks = lex("(compose (F 2) (I 3)) ; comment\n(L 4 2)", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_GE(Toks.size(), 14u);
  EXPECT_TRUE(Toks[0].is(Tok::LParen));
  EXPECT_TRUE(Toks[1].isSymbol("compose"));
  EXPECT_TRUE(Toks[3].isSymbol("F"));
  EXPECT_TRUE(Toks[4].is(Tok::Number));
  EXPECT_TRUE(Toks[4].IsInt);
  EXPECT_EQ(Toks[4].Int, 2);
  EXPECT_TRUE(Toks.back().is(Tok::Eof));
}

TEST(Lexer, HyphenatedNamesVsSubtraction) {
  Diagnostics Diags;
  auto Toks = lex("direct-sum n_-1 m_-n_", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Toks[0].isSymbol("direct-sum"));
  EXPECT_TRUE(Toks[1].isSymbol("n_"));
  EXPECT_TRUE(Toks[2].is(Tok::Minus));
  EXPECT_EQ(Toks[3].Int, 1);
  EXPECT_TRUE(Toks[4].isSymbol("m_"));
  EXPECT_TRUE(Toks[5].is(Tok::Minus));
  EXPECT_TRUE(Toks[6].isSymbol("n_"));
}

TEST(Lexer, DirectivesAndComments) {
  Diagnostics Diags;
  auto Toks = lex("#subname fft16 ; trailing\n(F 2)", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Toks[0].is(Tok::Directive));
  // The comment is part of the directive line; directives keep raw text.
  EXPECT_TRUE(startsWith(Toks[0].Text, "subname fft16"));
  EXPECT_TRUE(Toks[1].is(Tok::LParen));
}

TEST(Lexer, NumbersIntAndFloat) {
  Diagnostics Diags;
  auto Toks = lex("12 1.23 2e3 7e-2", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Toks[0].IsInt);
  EXPECT_FALSE(Toks[1].IsInt);
  EXPECT_DOUBLE_EQ(Toks[1].Num, 1.23);
  EXPECT_DOUBLE_EQ(Toks[2].Num, 2000.0);
  EXPECT_DOUBLE_EQ(Toks[3].Num, 0.07);
}

TEST(Parser, ParameterizedMatrices) {
  Diagnostics Diags;
  FormulaRef F = parseFormulaString("(F 8)", Diags);
  ASSERT_TRUE(F) << Diags.dump();
  EXPECT_EQ(F->kind(), FKind::DFT);
  EXPECT_EQ(F->param(0), 8);
  EXPECT_EQ(F->inSize(), 8);

  FormulaRef L = parseFormulaString("(L 16 4)", Diags);
  ASSERT_TRUE(L);
  EXPECT_EQ(L->kind(), FKind::Stride);
  EXPECT_EQ(L->param(0), 16);
  EXPECT_EQ(L->param(1), 4);
}

TEST(Parser, NAryAssociatesRightToLeft) {
  Diagnostics Diags;
  FormulaRef F = parseFormulaString("(compose (F 2) (I 2) (F 2))", Diags);
  ASSERT_TRUE(F) << Diags.dump();
  ASSERT_EQ(F->kind(), FKind::Compose);
  EXPECT_EQ(F->child(0)->kind(), FKind::DFT);
  ASSERT_EQ(F->child(1)->kind(), FKind::Compose);
  EXPECT_EQ(F->child(1)->child(0)->kind(), FKind::Identity);
}

TEST(Parser, MatrixDiagonalPermutation) {
  Diagnostics Diags;
  FormulaRef M =
      parseFormulaString("(matrix ((1 0) (0 1) (1 1)))", Diags);
  ASSERT_TRUE(M) << Diags.dump();
  EXPECT_EQ(M->outSize(), 3);
  EXPECT_EQ(M->inSize(), 2);

  FormulaRef D = parseFormulaString("(diagonal (1 sqrt(2) (0, -1)))", Diags);
  ASSERT_TRUE(D) << Diags.dump();
  ASSERT_EQ(D->diagElems().size(), 3u);
  EXPECT_NEAR(D->diagElems()[1].real(), std::sqrt(2.0), 1e-15);
  EXPECT_EQ(D->diagElems()[2], Cplx(0, -1));

  FormulaRef P = parseFormulaString("(permutation (2 3 1))", Diags);
  ASSERT_TRUE(P) << Diags.dump();
  // y_i = x_{k_i - 1}: y0 = x1.
  Matrix PM = P->toMatrix();
  EXPECT_EQ(PM.at(0, 1), Cplx(1, 0));
  EXPECT_EQ(PM.at(1, 2), Cplx(1, 0));
  EXPECT_EQ(PM.at(2, 0), Cplx(1, 0));
}

TEST(Parser, ScalarConstantExpressions) {
  Diagnostics Diags;
  FormulaRef D = parseFormulaString(
      "(diagonal ((cos(2*pi/3.0), sin(2*pi/3.0)) (2*pi) -3))", Diags);
  ASSERT_TRUE(D) << Diags.dump();
  double Pi = 3.14159265358979323846;
  EXPECT_NEAR(D->diagElems()[0].real(), std::cos(2 * Pi / 3), 1e-15);
  EXPECT_NEAR(D->diagElems()[0].imag(), std::sin(2 * Pi / 3), 1e-15);
  EXPECT_NEAR(D->diagElems()[1].real(), 2 * Pi, 1e-15);
  EXPECT_EQ(D->diagElems()[2], Cplx(-3, 0));
}

TEST(Parser, WFunctionInElements) {
  Diagnostics Diags;
  FormulaRef D = parseFormulaString("(diagonal (w(4, 1) w(4, 2)))", Diags);
  ASSERT_TRUE(D) << Diags.dump();
  EXPECT_NEAR(std::abs(D->diagElems()[0] - Cplx(0, -1)), 0, 1e-15);
  EXPECT_NEAR(std::abs(D->diagElems()[1] - Cplx(-1, 0)), 0, 1e-15);
}

TEST(Parser, DefineAndUse) {
  Diagnostics Diags;
  Parser P("(define F4 (compose (tensor (F 2) (I 2)) (T 4 2) "
           "(tensor (I 2) (F 2)) (L 4 2))) (compose F4 F4)",
           Diags);
  auto Prog = P.parseProgram();
  ASSERT_TRUE(Prog) << Diags.dump();
  ASSERT_EQ(Prog->Items.size(), 1u);
  EXPECT_EQ(Prog->Items[0].Formula->inSize(), 4);
  EXPECT_TRUE(Prog->Defines.count("F4"));
}

TEST(Parser, PrintParseRoundTrip) {
  Diagnostics Diags;
  const char *Sources[] = {
      "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
      "(direct-sum (F 2) (I 3) (DCT2 4))",
      "(tensor (WHT 4) (DCT4 2))",
      "(permutation (2 1 3))",
  };
  for (const char *Src : Sources) {
    FormulaRef F = parseFormulaString(Src, Diags);
    ASSERT_TRUE(F) << Diags.dump() << Src;
    FormulaRef G = parseFormulaString(F->print(), Diags);
    ASSERT_TRUE(G) << Diags.dump() << F->print();
    EXPECT_TRUE(formulaEqual(F, G)) << F->print() << " vs " << G->print();
  }
}

TEST(Parser, Directives) {
  Diagnostics Diags;
  Parser P("#datatype real\n#language fortran\n#codetype complex\n"
           "#subname mysub\n(WHT 4)",
           Diags);
  auto Prog = P.parseProgram();
  ASSERT_TRUE(Prog) << Diags.dump();
  ASSERT_EQ(Prog->Items.size(), 1u);
  EXPECT_EQ(Prog->Items[0].Dirs.Datatype, "real");
  EXPECT_EQ(Prog->Items[0].Dirs.Language, "fortran");
  EXPECT_EQ(Prog->Items[0].Dirs.CodeType, "complex");
  EXPECT_EQ(Prog->Items[0].Dirs.SubName, "mysub");
}

TEST(Parser, UnrollDirectiveAttachesToFormulas) {
  Diagnostics Diags;
  Parser P("#unroll on\n(define I2F2 (tensor (I 2) (F 2)))\n"
           "#unroll off\n(tensor (I 32) I2F2)",
           Diags);
  auto Prog = P.parseProgram();
  ASSERT_TRUE(Prog) << Diags.dump();
  ASSERT_EQ(Prog->Items.size(), 1u);
  const FormulaRef &Top = Prog->Items[0].Formula;
  ASSERT_TRUE(Top->unrollHint().has_value());
  EXPECT_FALSE(*Top->unrollHint());
  // The defined sub-formula carries "on".
  const FormulaRef &Sub = Top->child(1);
  ASSERT_TRUE(Sub->unrollHint().has_value());
  EXPECT_TRUE(*Sub->unrollHint());
}

TEST(Parser, ErrorsAreReported) {
  struct {
    const char *Src;
    const char *Why;
  } Cases[] = {
      {"(F 0)", "non-positive size"},
      {"(L 7 2)", "divisibility"},
      {"(WHT 6)", "power of two"},
      {"(compose (F 2) (F 3))", "size mismatch"},
      {"(permutation (1 1 2))", "not a permutation"},
      {"(matrix ((1 2) (3)))", "ragged rows"},
      {"(compose (F 2))", "arity"},
      {"(foo (F 2))", "user matrices take integer args"},
      {"undefined_name", "undefined symbol"},
  };
  for (const auto &C : Cases) {
    Diagnostics Diags;
    FormulaRef F = parseFormulaString(C.Src, Diags);
    EXPECT_TRUE(!F || Diags.hasErrors()) << C.Src << " (" << C.Why << ")";
  }
}

TEST(Parser, TemplateWithConditionParses) {
  Diagnostics Diags;
  auto Defs = parseTemplateString(R"(
    (template (L mn_ n_) [mn_ == n_ * n_]
      (do $i0 = 0, mn_-1
         $out($i0) = $in($i0)
       end)))",
                                  Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  ASSERT_EQ(Defs.size(), 1u);
  EXPECT_TRUE(Defs[0].Condition);
  EXPECT_EQ(Defs[0].Body.size(), 3u);
  EXPECT_EQ(Defs[0].Body.front().K, tpl::TStmt::Do);
}

TEST(Parser, BuiltinTemplatesParse) {
  Diagnostics Diags;
  auto Defs = parseTemplateString(tpl::builtinTemplatesText(), Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.dump();
  EXPECT_GE(Defs.size(), 12u);
}

} // namespace
