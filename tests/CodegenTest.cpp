//===- tests/CodegenTest.cpp - Code generation tests --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the C and Fortran emitters and of the native compile-and-load
/// path: emitted C is compiled with the system compiler, loaded with dlopen
/// and checked against the dense-matrix oracle, closing the loop on the
/// whole compiler.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "codegen/CEmitter.h"
#include "codegen/FortranEmitter.h"
#include "codegen/VectorEmitter.h"
#include "codegen/VectorISA.h"
#include "driver/Compiler.h"
#include "ir/Builder.h"
#include "perf/NativeCompile.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace spl;
using namespace spl::test;

namespace {

driver::CompiledUnit compileOne(const std::string &Source,
                                const driver::CompilerOptions &Opts) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  auto Units = C.compileSource(Source, Opts);
  EXPECT_TRUE(Units) << Diags.dump();
  EXPECT_EQ(Units->size(), 1u);
  return Units->front();
}

/// Compiles a complex-datatype formula to C, builds it natively, runs it on
/// random data and compares against the dense oracle.
void checkNativeC(const std::string &Source, std::int64_t Threshold) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  SPL_SKIP_IF_FAULTS_ARMED();
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = Threshold;
  auto Unit = compileOne(Source, Opts);

  std::string Err;
  auto Mod = perf::NativeModule::compile(Unit.Code, Unit.SubName, &Err);
  ASSERT_TRUE(Mod) << Err << "\n" << Unit.Code;

  std::int64_t N = Unit.Final.InSize;
  std::vector<Cplx> X = randomVector(N);
  std::vector<double> XR(2 * N), YR(2 * Unit.Final.OutSize, 0.0);
  for (std::int64_t I = 0; I != N; ++I) {
    XR[2 * I] = X[I].real();
    XR[2 * I + 1] = X[I].imag();
  }
  Mod->fn()(YR.data(), XR.data());

  std::vector<Cplx> Want = Unit.Formula->toMatrix().apply(X);
  double Max = 0;
  for (size_t I = 0; I != Want.size(); ++I)
    Max = std::max(Max, std::abs(Cplx(YR[2 * I], YR[2 * I + 1]) - Want[I]));
  EXPECT_LT(Max, 1e-9) << Unit.Code;
}

TEST(CEmitter, EmitsCompilableUnrolledFFT) {
  checkNativeC("#subname fft8\n"
               "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) "
               "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) "
               "(L 4 2))) (L 8 2))",
               /*Threshold=*/64);
}

TEST(CEmitter, EmitsCompilableLoopCode) {
  checkNativeC("#subname fft16loop\n"
               "(compose (tensor (F 4) (I 4)) (T 16 4) (tensor (I 4) (F 4)) "
               "(L 16 4))",
               /*Threshold=*/4);
}

TEST(CEmitter, RealDatatypeWHT) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  SPL_SKIP_IF_FAULTS_ARMED();
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  auto Unit = compileOne("#datatype real\n#subname wht8\n"
                         "(tensor (WHT 2) (WHT 2) (WHT 2))",
                         Opts);
  std::string Err;
  auto Mod = perf::NativeModule::compile(Unit.Code, "wht8", &Err);
  ASSERT_TRUE(Mod) << Err;

  std::vector<double> X = randomRealVector(8), Y(8, 0.0);
  Mod->fn()(Y.data(), X.data());

  std::vector<Cplx> XC(8);
  for (int I = 0; I < 8; ++I)
    XC[I] = Cplx(X[I], 0);
  std::vector<Cplx> Want = Unit.Formula->toMatrix().apply(XC);
  for (int I = 0; I < 8; ++I)
    EXPECT_NEAR(Y[I], Want[I].real(), 1e-10);
}

TEST(CEmitter, StrideParametersAddressLogicalElements) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  SPL_SKIP_IF_FAULTS_ARMED();
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  DirectiveState Dirs;
  Dirs.SubName = "f2s";
  auto Unit = C.compileFormula(
      parseFormulaString("(F 2)", Diags), Dirs, Opts);
  ASSERT_TRUE(Unit) << Diags.dump();

  codegen::CEmitOptions CO;
  CO.StrideParams = true;
  std::string Code = codegen::emitC(Unit->Final, CO);
  ASSERT_NE(Code.find("int ioff"), std::string::npos);

  std::string Err;
  auto Mod = perf::NativeModule::compile(Code, "f2s", &Err);
  ASSERT_TRUE(Mod) << Err << Code;
  using StrideFn =
      void (*)(double *, const double *, int, int, int, int);
  auto Fn = reinterpret_cast<StrideFn>(
      reinterpret_cast<void *>(Mod->fn()));

  // Input complex elements at logical stride 2, offset 1:
  // x_logical[k] = buffer[1 + 2*k].
  std::vector<Cplx> Buf = {Cplx(9, 9), Cplx(1, 2), Cplx(9, 9), Cplx(3, -4),
                           Cplx(9, 9)};
  std::vector<double> BufR(Buf.size() * 2);
  for (size_t I = 0; I != Buf.size(); ++I) {
    BufR[2 * I] = Buf[I].real();
    BufR[2 * I + 1] = Buf[I].imag();
  }
  std::vector<double> OutR(8, 0.0); // Out at stride 2, offset 0.
  Fn(OutR.data(), BufR.data(), /*ioff=*/1, /*ooff=*/0, /*istride=*/2,
     /*ostride=*/2);
  Cplx X0(1, 2), X1(3, -4);
  EXPECT_NEAR(std::abs(Cplx(OutR[0], OutR[1]) - (X0 + X1)), 0, 1e-12);
  EXPECT_NEAR(std::abs(Cplx(OutR[4], OutR[5]) - (X0 - X1)), 0, 1e-12);
}

TEST(CEmitter, VectorizeWrapperComputesTensorWithIdentity) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  SPL_SKIP_IF_FAULTS_ARMED();
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  DirectiveState Dirs;
  Dirs.SubName = "f2v";
  auto Unit =
      C.compileFormula(parseFormulaString("(F 2)", Diags), Dirs, Opts);
  ASSERT_TRUE(Unit) << Diags.dump();

  codegen::CEmitOptions CO;
  CO.VectorizeCount = 3; // F2 (x) I3.
  std::string Code = codegen::emitC(Unit->Final, CO);
  std::string Err;
  auto Mod = perf::NativeModule::compile(Code, "f2v", &Err);
  ASSERT_TRUE(Mod) << Err << Code;

  FormulaRef Want = makeTensor(makeDFT(2), makeIdentity(3));
  std::vector<Cplx> X = randomVector(6);
  std::vector<double> XR(12), YR(12, 0.0);
  for (int I = 0; I < 6; ++I) {
    XR[2 * I] = X[I].real();
    XR[2 * I + 1] = X[I].imag();
  }
  Mod->fn()(YR.data(), XR.data());
  std::vector<Cplx> Ref = Want->toMatrix().apply(X);
  for (int I = 0; I < 6; ++I)
    EXPECT_NEAR(std::abs(Cplx(YR[2 * I], YR[2 * I + 1]) - Ref[I]), 0, 1e-12)
        << Code;
}

TEST(FortranEmitter, PaperI64F2Shape) {
  // The paper's Section 3.3.1 example: (tensor (I 32) (tensor (I 2) (F 2)))
  // with the inner part unrolled produces a 32-iteration loop whose body is
  // the unrolled butterfly pair.
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  auto Units = C.compileSource(R"(
#datatype real
#language fortran
#unroll on
(define I2F2 (tensor (I 2) (F 2)))
#unroll off
#subname I64F2
(tensor (I 32) I2F2)
)",
                               Opts);
  ASSERT_TRUE(Units) << Diags.dump();
  const std::string &Code = Units->front().Code;
  EXPECT_NE(Code.find("subroutine I64F2 (y,x)"), std::string::npos) << Code;
  EXPECT_NE(Code.find("implicit real*8 (f)"), std::string::npos);
  EXPECT_NE(Code.find("real*8 y(128),x(128)"), std::string::npos);
  EXPECT_NE(Code.find("do i"), std::string::npos);
  EXPECT_NE(Code.find("end do"), std::string::npos);
  // The loop body is straight-line butterflies: subscripts 4*i+c appear.
  EXPECT_NE(Code.find("4*i"), std::string::npos);
}

TEST(FortranEmitter, ComplexCodetypeUsesComplexType) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  auto Units = C.compileSource("#language fortran\n#codetype complex\n"
                               "#subname cplx4\n(F 4)",
                               Opts);
  ASSERT_TRUE(Units) << Diags.dump();
  const std::string &Code = Units->front().Code;
  EXPECT_NE(Code.find("complex*16 y(4),x(4)"), std::string::npos) << Code;
  EXPECT_EQ(Code.find("real*8 y("), std::string::npos);
}

TEST(FortranEmitter, LinesFitFixedForm) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 16;
  auto Units = C.compileSource("#language fortran\n(F 16)", Opts);
  ASSERT_TRUE(Units) << Diags.dump();
  std::istringstream SS(Units->front().Code);
  std::string Line;
  while (std::getline(SS, Line))
    EXPECT_LE(Line.size(), 72u) << Line;
}

/// Compiles a complex-datatype formula, renders it through the vector
/// emitter for \p ISA, builds it natively, packs laneCount(ISA) distinct
/// random columns slot-major, runs once, and checks every column against
/// the dense oracle.
void checkVectorC(const std::string &Source, std::int64_t Threshold,
                  codegen::VectorISA ISA) {
  if (!perf::NativeModule::available())
    GTEST_SKIP() << "no system C compiler";
  SPL_SKIP_IF_FAULTS_ARMED();
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = Threshold;
  auto Unit = compileOne(Source, Opts);

  codegen::VectorEmitOptions VO;
  VO.ISA = ISA;
  std::string Code = codegen::emitVectorC(Unit.Final, VO);

  std::string Err;
  auto Mod =
      perf::NativeModule::compile(Code, Unit.SubName, &Err,
                                  "-O2 " + codegen::isaCompilerFlags(ISA));
  ASSERT_TRUE(Mod) << Err << "\n" << Code;

  const int M = codegen::laneCount(ISA);
  std::int64_t N = Unit.Final.InSize;
  std::int64_t NOut = Unit.Final.OutSize;
  std::vector<std::vector<Cplx>> Cols;
  std::vector<double> PX(2 * N * M, 0.0), PY(2 * NOut * M, 0.0);
  for (int J = 0; J < M; ++J) {
    Cols.push_back(randomVector(N, /*Seed=*/1000 + J));
    for (std::int64_t I = 0; I != N; ++I) {
      PX[(2 * I) * M + J] = Cols[J][I].real();
      PX[(2 * I + 1) * M + J] = Cols[J][I].imag();
    }
  }
  Mod->fn()(PY.data(), PX.data());

  Matrix Dense = Unit.Formula->toMatrix();
  for (int J = 0; J < M; ++J) {
    std::vector<Cplx> Want = Dense.apply(Cols[J]);
    double Max = 0;
    for (std::int64_t I = 0; I != NOut; ++I)
      Max = std::max(Max,
                     std::abs(Cplx(PY[(2 * I) * M + J],
                                   PY[(2 * I + 1) * M + J]) -
                              Want[I]));
    EXPECT_LT(Max, 1e-10) << "column " << J << "\n" << Code;
  }
}

const char *kVecFFT8 =
    "#subname vfft8\n"
    "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) "
    "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) "
    "(L 4 2))) (L 8 2))";

const char *kVecFFT16Loop =
    "#subname vfft16\n"
    "(compose (tensor (F 4) (I 4)) (T 16 4) (tensor (I 4) (F 4)) "
    "(L 16 4))";

TEST(VectorEmitter, HostISAUnrolledKernelMatchesOracle) {
  checkVectorC(kVecFFT8, /*Threshold=*/64, codegen::detectISA());
}

TEST(VectorEmitter, HostISALoopKernelMatchesOracle) {
  checkVectorC(kVecFFT16Loop, /*Threshold=*/4, codegen::detectISA());
}

TEST(VectorEmitter, ForcedScalarISADegeneratesToOneLane) {
  ASSERT_EQ(codegen::laneCount(codegen::VectorISA::Scalar), 1);
  checkVectorC(kVecFFT8, /*Threshold=*/64, codegen::VectorISA::Scalar);
}

TEST(VectorEmitter, AVX2EmissionIsLaneWiseOnly) {
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  auto Unit = compileOne(kVecFFT8, Opts);
  codegen::VectorEmitOptions VO;
  VO.ISA = codegen::VectorISA::AVX2;
  std::string Code = codegen::emitVectorC(Unit.Final, VO);
  EXPECT_NE(Code.find("#include <immintrin.h>"), std::string::npos);
  EXPECT_NE(Code.find("__m256d"), std::string::npos);
  EXPECT_NE(Code.find("_mm256_loadu_pd"), std::string::npos);
  EXPECT_NE(Code.find("_mm256_storeu_pd"), std::string::npos);
  // Lane independence is the whole correctness argument (zero-padded tail
  // groups, thread-count bit-identity): no cross-lane or contracted ops.
  for (const char *Banned :
       {"_mm256_shuffle", "_mm256_permute", "_mm256_hadd", "_mm256_fmadd",
        "_mm256_fmsub"})
    EXPECT_EQ(Code.find(Banned), std::string::npos) << Banned;
}

TEST(VectorEmitter, NEONEmissionRendersFloat64x2) {
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 64;
  auto Unit = compileOne(kVecFFT8, Opts);
  codegen::VectorEmitOptions VO;
  VO.ISA = codegen::VectorISA::NEON;
  std::string Code = codegen::emitVectorC(Unit.Final, VO);
  EXPECT_NE(Code.find("#include <arm_neon.h>"), std::string::npos);
  EXPECT_NE(Code.find("float64x2_t"), std::string::npos);
  EXPECT_NE(Code.find("vld1q_f64"), std::string::npos);
  EXPECT_NE(Code.find("vst1q_f64"), std::string::npos);
}

TEST(Driver, OptLevelsProduceDifferentCodeSizes) {
  const char *Src = "(compose (tensor (F 2) (I 2)) (T 4 2) "
                    "(tensor (I 2) (F 2)) (L 4 2))";
  size_t Sizes[3];
  int Idx = 0;
  for (auto Level : {opt::OptLevel::None, opt::OptLevel::Scalarize,
                     opt::OptLevel::Default}) {
    driver::CompilerOptions Opts;
    Opts.Level = Level;
    Opts.UnrollThreshold = 64;
    Sizes[Idx++] = compileOne(Src, Opts).Final.staticSize();
  }
  EXPECT_LE(Sizes[2], Sizes[0]);
}

} // namespace
