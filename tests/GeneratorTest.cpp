//===- tests/GeneratorTest.cpp - Breakdown rule tests --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every breakdown rule must denote exactly the transform it factors: the
/// dense matrix of the rule's output formula equals the dense definition.
/// These tests pin down Equations 5, 7, 8, 9, 10 and the WHT and DCT rules.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gen/Enumerate.h"
#include "gen/Rules.h"
#include "ir/Builder.h"
#include "ir/Transforms.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::test;

namespace {

void expectDenotes(const FormulaRef &F, const Matrix &Want,
                   const char *What) {
  ASSERT_TRUE(F) << What;
  EXPECT_LT(F->toMatrix().maxAbsDiff(Want), 1e-10)
      << What << ": " << F->print();
}

TEST(Rules, CooleyTukeyDITEquation5) {
  for (auto [R, S] : {std::pair<std::int64_t, std::int64_t>{2, 2},
                      {2, 4},
                      {4, 2},
                      {4, 4},
                      {2, 8},
                      {3, 4},
                      {6, 2}}) {
    expectDenotes(gen::ruleCooleyTukeyDIT(R, S, makeDFT(R), makeDFT(S)),
                  dftMatrix(R * S), "DIT");
  }
}

TEST(Rules, CooleyTukeyDIFEquation7) {
  for (auto [R, S] : {std::pair<std::int64_t, std::int64_t>{2, 2},
                      {2, 4},
                      {4, 2},
                      {3, 4}}) {
    expectDenotes(gen::ruleCooleyTukeyDIF(R, S, makeDFT(R), makeDFT(S)),
                  dftMatrix(R * S), "DIF");
  }
}

TEST(Rules, CooleyTukeyParallelEquation8) {
  for (auto [R, S] : {std::pair<std::int64_t, std::int64_t>{2, 2},
                      {2, 4},
                      {4, 2},
                      {4, 4}}) {
    expectDenotes(
        gen::ruleCooleyTukeyParallel(R, S, makeDFT(R), makeDFT(S)),
        dftMatrix(R * S), "parallel");
  }
}

TEST(Rules, CooleyTukeyVectorEquation9) {
  for (auto [R, S] : {std::pair<std::int64_t, std::int64_t>{2, 2},
                      {2, 4},
                      {4, 2},
                      {4, 4}}) {
    expectDenotes(gen::ruleCooleyTukeyVector(R, S, makeDFT(R), makeDFT(S)),
                  dftMatrix(R * S), "vector");
  }
}

TEST(Rules, Equation10AllCompositionsOf16) {
  for (const auto &Comp : gen::factorCompositions(16)) {
    if (Comp.size() < 2)
      continue;
    std::vector<std::pair<std::int64_t, FormulaRef>> Factors;
    for (std::int64_t Ni : Comp)
      Factors.push_back({Ni, makeDFT(Ni)});
    expectDenotes(gen::ruleEq10(Factors), dftMatrix(16), "Eq10");
  }
}

TEST(Rules, Equation10MixedRadix) {
  std::vector<std::pair<std::int64_t, FormulaRef>> Factors = {
      {2, makeDFT(2)}, {3, makeDFT(3)}, {2, makeDFT(2)}};
  expectDenotes(gen::ruleEq10(Factors), dftMatrix(12), "Eq10 mixed");
}

TEST(Rules, RecursiveFFTAllVariants) {
  for (int V : {0, 1, 2, 3})
    for (std::int64_t N : {2, 4, 8, 16, 32})
      expectDenotes(gen::recursiveFFT(N, V), dftMatrix(N), "recursiveFFT");
}

TEST(Rules, WHTFactorization) {
  // WHT_16 = prod over factors; try (4,4), (2,8), (2,2,2,2).
  using FP = std::vector<std::pair<std::int64_t, FormulaRef>>;
  expectDenotes(gen::ruleWHT(FP{{4, makeWHT(4)}, {4, makeWHT(4)}}),
                whtMatrix(16), "WHT 4x4");
  expectDenotes(gen::ruleWHT(FP{{2, makeWHT(2)}, {8, makeWHT(8)}}),
                whtMatrix(16), "WHT 2x8");
  expectDenotes(gen::ruleWHT(FP{{2, makeWHT(2)},
                                {2, makeWHT(2)},
                                {2, makeWHT(2)},
                                {2, makeWHT(2)}}),
                whtMatrix(16), "WHT 2^4");
}

TEST(Rules, WHT2EqualsF2) {
  EXPECT_LT(whtMatrix(2).maxAbsDiff(dftMatrix(2)), 1e-15);
}

TEST(Rules, DCT2Base) {
  expectDenotes(gen::ruleDCT2Base2(), dct2Matrix(2), "DCT2 base");
}

TEST(Rules, DCT2EvenOdd) {
  for (std::int64_t N : {4, 8, 16})
    expectDenotes(
        gen::ruleDCT2EvenOdd(N, makeDCT2(N / 2), makeDCT4(N / 2)),
        dct2Matrix(N), "DCT2 even-odd");
}

TEST(Rules, DCT4ViaDCT2) {
  for (std::int64_t N : {2, 4, 8})
    expectDenotes(gen::ruleDCT4ViaDCT2(N, makeDCT2(N)), dct4Matrix(N),
                  "DCT4 via DCT2");
}

TEST(Rules, RecursiveDCTsFullyExpand) {
  for (std::int64_t N : {2, 4, 8, 16}) {
    expectDenotes(gen::recursiveDCT2(N), dct2Matrix(N), "recursive DCT2");
    expectDenotes(gen::recursiveDCT4(N), dct4Matrix(N), "recursive DCT4");
  }
}

TEST(Enumerate, FactorCompositions) {
  auto Comps = gen::factorCompositions(8);
  // [8], [2,4], [2,2,2], [4,2].
  EXPECT_EQ(Comps.size(), 4u);
  auto Comps12 = gen::factorCompositions(12);
  // [12],[2,6],[2,2,3],[2,3,2],[3,4],[3,2,2],[4,3],[6,2].
  EXPECT_EQ(Comps12.size(), 8u);
}

TEST(Enumerate, FFTFormulasAreDistinctAndCorrect) {
  gen::EnumOptions Opts;
  Opts.MaxCount = 45;
  auto Formulas = gen::enumerateFFT(32, Opts);
  EXPECT_EQ(Formulas.size(), 45u) << "need the paper's 45 formulas";
  std::set<std::string> Seen;
  Matrix Want = dftMatrix(32);
  for (const auto &F : Formulas) {
    EXPECT_TRUE(Seen.insert(F->print()).second) << F->print();
    EXPECT_LT(F->toMatrix().maxAbsDiff(Want), 1e-9) << F->print();
  }
}

TEST(Enumerate, WHTFormulasAreDistinctAndCorrect) {
  auto Formulas = gen::enumerateWHT(16);
  // Compositions of 4 with >= 2 parts: 2^3 - 1 = 7.
  EXPECT_EQ(Formulas.size(), 7u);
  std::set<std::string> Seen;
  Matrix Want = whtMatrix(16);
  for (const auto &F : Formulas) {
    EXPECT_TRUE(Seen.insert(F->print()).second);
    EXPECT_LT(F->toMatrix().maxAbsDiff(Want), 1e-12) << F->print();
  }
  EXPECT_EQ(gen::enumerateWHT(2).size(), 1u);
  EXPECT_EQ(gen::enumerateWHT(16, 3).size(), 3u);
}

TEST(Enumerate, SmallSizesHaveFormulas) {
  for (std::int64_t N : {4, 8, 16}) {
    auto Formulas = gen::enumerateFFT(N);
    EXPECT_GE(Formulas.size(), 2u);
    for (const auto &F : Formulas)
      EXPECT_LT(F->toMatrix().maxAbsDiff(dftMatrix(N)), 1e-10) << F->print();
  }
}

TEST(Rules, VectorizeWrapperDenotesKroneckerWithIdentity) {
  // The Section-5 vectorization wrapper: A -> A (x) I_m applies A to m
  // interleaved columns. Its dense matrix must be exactly kron(A, I_m).
  for (std::int64_t N : {2, 4, 8}) {
    Matrix A = dftMatrix(N);
    for (std::int64_t M : {1, 2, 4, 8}) {
      FormulaRef V = gen::ruleVectorize(makeDFT(N), M);
      ASSERT_TRUE(V);
      EXPECT_LT(V->toMatrix().maxAbsDiff(A.kron(Matrix::identity(M))),
                1e-10)
          << "N=" << N << " M=" << M << ": " << V->print();
    }
  }
}

TEST(Rules, VectorizeWrapperNonPowerOfTwoSizes) {
  for (auto [N, M] : {std::pair<std::int64_t, std::int64_t>{3, 2},
                      {6, 4},
                      {12, 2},
                      {5, 8}}) {
    FormulaRef V = gen::ruleVectorize(makeDFT(N), M);
    ASSERT_TRUE(V);
    EXPECT_LT(V->toMatrix().maxAbsDiff(
                  dftMatrix(N).kron(Matrix::identity(M))),
              1e-10)
        << "N=" << N << " M=" << M;
  }
}

TEST(Rules, VectorizeWithOneLaneReturnsFormulaUnchanged) {
  FormulaRef F = makeDFT(8);
  FormulaRef V = gen::ruleVectorize(F, 1);
  EXPECT_EQ(V.get(), F.get());
}

} // namespace
