//===- tests/PipelineTest.cpp - Restructuring and optimization tests ---------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over the pass pipeline: every configuration of unrolling,
/// scalarization, optimization level, type lowering and peepholes must
/// preserve the dense-matrix semantics, and each pass must deliver its
/// structural promise (no loops after unrolling, no intrinsics after
/// evaluation, fewer operations after optimization, ...).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Parser.h"
#include "ir/Builder.h"
#include "lower/Expander.h"
#include "opt/DCE.h"
#include "opt/Pipeline.h"
#include "templates/Registry.h"
#include "vm/Executor.h"
#include "xform/Complex2Real.h"
#include "xform/IntrinEval.h"
#include "xform/Scalarize.h"
#include "xform/Unroll.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::test;

namespace {

icode::Program expandOrDie(const FormulaRef &F, std::int64_t Threshold = 0) {
  Diagnostics Diags;
  static auto Registry = tpl::TemplateRegistry::withBuiltins();
  lower::Expander Exp(Registry, Diags);
  lower::ExpandOptions Opts;
  Opts.UnrollThreshold = Threshold;
  auto P = Exp.expand(F, Opts);
  EXPECT_TRUE(P) << Diags.dump();
  return *P;
}

/// Runs a complex program (VM) and compares against the oracle.
void checkProgramComplex(const icode::Program &P, const FormulaRef &F,
                         double Tol = 1e-9) {
  vm::Executor VM(P);
  std::vector<Cplx> X = randomVector(P.InSize), Got;
  VM.run(X, Got);
  std::vector<Cplx> Want = F->toMatrix().apply(X);
  EXPECT_LT(maxAbsDiff(Got, Want), Tol) << F->print();
}

/// Runs a lowered (interleaved-real) program and compares.
void checkProgramLowered(const icode::Program &P, const FormulaRef &F,
                         double Tol = 1e-9) {
  ASSERT_TRUE(P.LoweredToReal);
  vm::Executor VM(P);
  std::vector<Cplx> X = randomVector(P.InSize);
  std::vector<double> XR(2 * X.size()), YR;
  for (size_t I = 0; I != X.size(); ++I) {
    XR[2 * I] = X[I].real();
    XR[2 * I + 1] = X[I].imag();
  }
  VM.runReal(XR, YR);
  std::vector<Cplx> Want = F->toMatrix().apply(X);
  ASSERT_EQ(YR.size(), Want.size() * 2);
  double Max = 0;
  for (size_t I = 0; I != Want.size(); ++I)
    Max = std::max(Max, std::abs(Cplx(YR[2 * I], YR[2 * I + 1]) - Want[I]));
  EXPECT_LT(Max, Tol) << F->print();
}

FormulaRef fft8() {
  Diagnostics Diags;
  FormulaRef F = parseFormulaString(
      "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) "
      "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))"
      " (L 8 2))",
      Diags);
  EXPECT_TRUE(F) << Diags.dump();
  return F;
}

TEST(Unroll, FullyUnrolledHasNoLoops) {
  auto P = expandOrDie(fft8(), /*Threshold=*/64);
  auto U = xform::unrollLoops(P);
  EXPECT_TRUE(xform::isStraightLine(U));
  checkProgramComplex(U, fft8());
}

TEST(Unroll, UnflaggedLoopsSurvive) {
  auto P = expandOrDie(fft8(), /*Threshold=*/0);
  auto U = xform::unrollLoops(P);
  EXPECT_FALSE(xform::isStraightLine(U));
  checkProgramComplex(U, fft8());
}

TEST(Unroll, UnrollAllIgnoresFlags) {
  auto P = expandOrDie(fft8(), 0);
  auto U = xform::unrollLoops(P, /*OnlyFlagged=*/false);
  EXPECT_TRUE(xform::isStraightLine(U));
  checkProgramComplex(U, fft8());
}

TEST(Unroll, PartialUnrollPreservesSemantics) {
  FormulaRef F = makeTensor(makeIdentity(8), makeDFT(2));
  auto P = expandOrDie(F);
  for (int Factor : {2, 4, 8}) {
    auto U = xform::partialUnroll(P, Factor);
    checkProgramComplex(U, F);
    // The loop is still there, with a shorter trip count.
    bool FoundLoop = false;
    for (const auto &I : U.Body)
      if (I.Opcode == icode::Op::Loop) {
        FoundLoop = true;
        EXPECT_EQ(I.Hi - I.Lo + 1, 8 / Factor);
      }
    EXPECT_TRUE(FoundLoop);
  }
}

TEST(Unroll, PartialUnrollSkipsIndivisibleTrips) {
  FormulaRef F = makeTensor(makeIdentity(6), makeDFT(2));
  auto P = expandOrDie(F);
  auto U = xform::partialUnroll(P, 4); // 6 % 4 != 0: untouched.
  EXPECT_EQ(U.Body.size(), P.Body.size());
  checkProgramComplex(U, F);
}

TEST(IntrinEval, NoIntrinsicsRemain) {
  auto P = expandOrDie(makeDFT(6));
  auto E = xform::evalIntrinsics(P);
  for (const auto &I : E.Body) {
    EXPECT_FALSE(I.A.is(icode::OpndKind::Intrinsic));
    EXPECT_FALSE(I.B.is(icode::OpndKind::Intrinsic));
  }
  EXPECT_FALSE(E.Tables.empty()); // Loop-indexed W() becomes a table.
  checkProgramComplex(E, makeDFT(6));
}

TEST(IntrinEval, ConstantCallsFoldWithoutTables) {
  // Fully unrolled code evaluates intrinsics to constants; no tables.
  auto P = xform::unrollLoops(expandOrDie(makeDFT(4), 64));
  auto E = xform::evalIntrinsics(P);
  EXPECT_TRUE(E.Tables.empty());
  checkProgramComplex(E, makeDFT(4));
}

TEST(IntrinEval, IdenticalTablesAreShared) {
  // (I 2) (x) F4 instantiates F4's twiddle table twice; the evaluator must
  // share the storage.
  Diagnostics Diags;
  FormulaRef F4 = parseFormulaString(
      "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
      Diags);
  ASSERT_TRUE(F4);
  FormulaRef F = makeCompose(makeTensor(makeIdentity(2), F4),
                             makeTensor(F4, makeIdentity(2)));
  auto P = xform::evalIntrinsics(expandOrDie(F));
  // Count distinct tables: T^4_2's diagonal appears repeatedly.
  std::set<size_t> Sizes;
  for (const auto &T : P.Tables)
    Sizes.insert(T.size());
  EXPECT_LE(P.Tables.size(), 2u * Sizes.size() + 2);
  checkProgramComplex(P, F);
}

TEST(Scalarize, TempVectorsBecomeScalars) {
  auto P = xform::evalIntrinsics(xform::unrollLoops(expandOrDie(fft8(), 64)));
  auto S = xform::scalarizeTemps(P);
  for (const auto &I : S.Body) {
    auto NoTempVec = [](const icode::Operand &O) {
      return !(O.Kind == icode::OpndKind::VecElem &&
               O.Id >= icode::FirstTempVec);
    };
    EXPECT_TRUE(NoTempVec(I.Dst));
    EXPECT_TRUE(NoTempVec(I.A));
    EXPECT_TRUE(NoTempVec(I.B));
  }
  checkProgramComplex(S, fft8());
}

TEST(Scalarize, LoopIndexedVectorsKept) {
  auto P = xform::evalIntrinsics(expandOrDie(fft8()));
  auto S = xform::scalarizeTemps(P);
  checkProgramComplex(S, fft8());
}

TEST(Complex2Real, LoweredMatchesComplex) {
  for (const FormulaRef &F :
       {makeDFT(4), makeTwiddle(8, 2),
        makeCompose(makeDFT(2), makeDiagonal({Cplx(0, 1), Cplx(2, -3)}))}) {
    auto P = xform::evalIntrinsics(expandOrDie(F));
    auto R = xform::lowerToReal(P);
    EXPECT_TRUE(R.LoweredToReal);
    checkProgramLowered(R, F);
  }
}

TEST(Complex2Real, MulByMinusIUsesSwapAndNeg) {
  // y = diag(-i, -i) x lowers to copies and negations, no multiplies.
  FormulaRef F = makeDiagonal({Cplx(0, -1), Cplx(0, -1)});
  auto R = xform::lowerToReal(xform::evalIntrinsics(expandOrDie(F)));
  for (const auto &I : R.Body)
    EXPECT_NE(I.Opcode, icode::Op::Mul);
  checkProgramLowered(R, F);
}

TEST(Complex2Real, AliasedSwapIsSafe) {
  // (F 2) then twiddle in place via compose: exercises dst==src swaps.
  FormulaRef F = makeCompose(makeDiagonal({Cplx(0, -1), Cplx(0, 1)}),
                             makeDFT(2));
  auto R = xform::lowerToReal(xform::evalIntrinsics(expandOrDie(F)));
  checkProgramLowered(R, F);
}

TEST(Optimizer, DefaultLevelShrinksUnrolledCode) {
  opt::PipelineOptions None;
  None.Level = opt::OptLevel::None;
  opt::PipelineOptions Full;
  Full.Level = opt::OptLevel::Default;

  auto P = expandOrDie(fft8(), 64);
  auto PNone = opt::runPipeline(P, None);
  auto PFull = opt::runPipeline(P, Full);
  EXPECT_LT(PFull.dynamicOpCount(), PNone.dynamicOpCount());
  checkProgramComplex(PNone, fft8());
  checkProgramComplex(PFull, fft8());
}

TEST(Optimizer, AllLevelsCorrectAcrossFormulas) {
  std::vector<FormulaRef> Formulas = {
      makeDFT(8),
      fft8(),
      makeCompose(makeWHT(4), makeStride(4, 2)),
      makeTensor(makeDFT(2), makeDFT(4)),
      makeDirectSum(makeDFT(4), makeIdentity(2)),
  };
  for (const auto &F : Formulas) {
    for (auto Level : {opt::OptLevel::None, opt::OptLevel::Scalarize,
                       opt::OptLevel::Default}) {
      for (bool Lower : {false, true}) {
        for (std::int64_t Thresh : {std::int64_t(0), std::int64_t(64)}) {
          opt::PipelineOptions Opts;
          Opts.Level = Level;
          Opts.LowerToReal = Lower;
          auto P = opt::runPipeline(expandOrDie(F, Thresh), Opts);
          if (Lower)
            checkProgramLowered(P, F);
          else
            checkProgramComplex(P, F);
        }
      }
    }
  }
}

TEST(Optimizer, ConstantFoldingFoldsTableReads) {
  // Unrolled DFT: all twiddles become constants; the optimizer should fold
  // multiplications by 1 away entirely.
  auto P = expandOrDie(makeDFT(2), 64);
  opt::PipelineOptions Opts;
  auto O = opt::runPipeline(P, Opts);
  // F2 is adds/subs only once folded.
  for (const auto &I : O.Body)
    EXPECT_NE(I.Opcode, icode::Op::Mul);
  checkProgramComplex(O, makeDFT(2));
}

TEST(Optimizer, CSEEliminatesRepeatedExpressions) {
  // (F 4) by definition recomputes W-weighted terms; CSE should reduce the
  // op count versus the unoptimized version.
  opt::PipelineOptions None;
  None.Level = opt::OptLevel::None;
  opt::PipelineOptions Full;
  auto P = expandOrDie(makeDFT(4), 64);
  EXPECT_LT(opt::runPipeline(P, Full).dynamicOpCount(),
            opt::runPipeline(P, None).dynamicOpCount());
}

TEST(Optimizer, DCERemovesUnusedWrites) {
  using namespace icode;
  Program P;
  P.InSize = 1;
  P.OutSize = 1;
  P.NumFltTemps = 3;
  P.Body.push_back(Instr::copy(Operand::fltTemp(0),
                               Operand::vecElem(VecIn, Affine(0))));
  // Dead: f1 never read.
  P.Body.push_back(Instr::bin(Op::Add, Operand::fltTemp(1),
                              Operand::fltTemp(0), Operand::fltTemp(0)));
  P.Body.push_back(Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                               Operand::fltTemp(0)));
  auto O = opt::eliminateDeadCode(P);
  EXPECT_EQ(O.Body.size(), 2u);
}

TEST(Optimizer, DCEKeepsLastOutputWrite) {
  using namespace icode;
  Program P;
  P.InSize = 1;
  P.OutSize = 1;
  // Overwritten output write is dead; the final one stays.
  P.Body.push_back(Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                               Operand::fltConst(Cplx(1, 0))));
  P.Body.push_back(Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                               Operand::vecElem(VecIn, Affine(0))));
  auto O = opt::eliminateDeadCode(P);
  ASSERT_EQ(O.Body.size(), 1u);
  EXPECT_TRUE(O.Body[0].A.is(OpndKind::VecElem));
}

TEST(Optimizer, PeepholeNegToSub) {
  using namespace icode;
  Program P;
  P.InSize = 1;
  P.OutSize = 1;
  P.Body.push_back(Instr::neg(Operand::vecElem(VecOut, Affine(0)),
                              Operand::vecElem(VecIn, Affine(0))));
  auto O = opt::peephole(P);
  ASSERT_EQ(O.Body.size(), 1u);
  EXPECT_EQ(O.Body[0].Opcode, Op::Sub);
  EXPECT_EQ(O.Body[0].A.FConst, Cplx(0, 0));
}

TEST(Optimizer, PeepholeNegConstMulFuses) {
  using namespace icode;
  Program P;
  P.InSize = 1;
  P.OutSize = 1;
  P.NumFltTemps = 1;
  P.Body.push_back(Instr::bin(Op::Mul, Operand::fltTemp(0),
                              Operand::fltConst(Cplx(7, 0)),
                              Operand::vecElem(VecIn, Affine(0))));
  P.Body.push_back(Instr::neg(Operand::vecElem(VecOut, Affine(0)),
                              Operand::fltTemp(0)));
  auto O = opt::peephole(P);
  auto Final = opt::eliminateDeadCode(O);
  ASSERT_EQ(Final.Body.size(), 1u);
  EXPECT_EQ(Final.Body[0].Opcode, Op::Mul);
  EXPECT_EQ(Final.Body[0].A.FConst, Cplx(-7, 0));
}

TEST(Optimizer, PartialUnrollThroughPipeline) {
  FormulaRef F = fft8();
  for (int Factor : {0, 2, 4}) {
    opt::PipelineOptions Opts;
    Opts.PartialUnrollFactor = Factor;
    auto P = opt::runPipeline(expandOrDie(F, /*Threshold=*/0), Opts);
    checkProgramComplex(P, F);
  }
}

TEST(Optimizer, SparcPipelineStaysCorrect) {
  opt::PipelineOptions Opts;
  Opts.SparcPeephole = true;
  auto P = opt::runPipeline(expandOrDie(fft8(), 64), Opts);
  for (const auto &I : P.Body)
    EXPECT_NE(I.Opcode, icode::Op::Neg); // All negations rewritten.
  checkProgramComplex(P, fft8());
}

} // namespace
