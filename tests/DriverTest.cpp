//===- tests/DriverTest.cpp - Driver and error-path tests -------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end driver tests (multi-formula programs, user templates in
/// source, directive interactions) and the expander's error paths: every
/// misuse a template author can commit must produce a diagnostic, not a
/// crash or silent wrong code.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "driver/Compiler.h"
#include "ir/Builder.h"
#include "lower/Expander.h"
#include "templates/Registry.h"
#include "vm/Executor.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::test;

namespace {

TEST(Driver, MultiFormulaProgram) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  auto Units = C.compileSource(R"(
#subname first
(F 4)
#subname second
#datatype real
(WHT 4)
)",
                               Opts);
  ASSERT_TRUE(Units) << Diags.dump();
  ASSERT_EQ(Units->size(), 2u);
  EXPECT_EQ((*Units)[0].SubName, "first");
  EXPECT_EQ((*Units)[1].SubName, "second");
  EXPECT_EQ((*Units)[0].Final.LoweredToReal, true);  // Complex datatype.
  EXPECT_EQ((*Units)[1].Final.LoweredToReal, false); // Real datatype.
}

TEST(Driver, TemplatesInSourceApplyToLaterFormulas) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  auto Units = C.compileSource(R"(
(template (DBL n_) [n_ >= 1]
  (do $i0 = 0, n_-1
     $out($i0) = 2 * $in($i0)
   end))
#datatype real
#subname doubler
(DBL 5)
)",
                               Opts);
  ASSERT_TRUE(Units) << Diags.dump();
  vm::Executor VM(Units->front().Final);
  std::vector<double> X = {1, 2, 3, 4, 5}, Y;
  VM.runReal(X, Y);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Y[I], 2.0 * (I + 1));
}

TEST(Driver, LanguageOverrideWins) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  Opts.LanguageOverride = "fortran";
  auto Units = C.compileSource("#language c\n(F 2)", Opts);
  ASSERT_TRUE(Units) << Diags.dump();
  EXPECT_EQ(Units->front().Language, "fortran");
  EXPECT_NE(Units->front().Code.find("subroutine"), std::string::npos);
}

TEST(Driver, EmitCodeOffSkipsRendering) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  Opts.EmitCode = false;
  auto Units = C.compileSource("(F 8)", Opts);
  ASSERT_TRUE(Units) << Diags.dump();
  EXPECT_TRUE(Units->front().Code.empty());
  EXPECT_GT(Units->front().Final.staticSize(), 0u);
}

/// Expands source with custom templates and expects failure mentioning
/// \p Needle.
void expectExpansionError(const std::string &TemplateSrc,
                          const std::string &FormulaSrc,
                          const std::string &Needle) {
  Diagnostics Diags;
  auto Registry = tpl::TemplateRegistry::withBuiltins();
  Registry.addAll(parseTemplateString(TemplateSrc, Diags));
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  FormulaRef F = parseFormulaString(FormulaSrc, Diags);
  ASSERT_TRUE(F) << Diags.dump();
  lower::Expander Exp(Registry, Diags);
  auto P = Exp.expand(F, {});
  EXPECT_FALSE(P) << "expected failure for " << FormulaSrc;
  EXPECT_NE(Diags.dump().find(Needle), std::string::npos) << Diags.dump();
}

TEST(ExpanderErrors, NonAffineSubscript) {
  expectExpansionError(R"(
    (template (BADSUB n_)
      (do $i0 = 0, n_-1
         do $i1 = 0, n_-1
            $out($i0 * $i1) = $in($i0)
         end
       end)))",
                       "(BADSUB 4)", "linear");
}

TEST(ExpanderErrors, ReadOfUnwrittenTemporary) {
  expectExpansionError(R"(
    (template (BADTMP n_)
      (do $i0 = 0, n_-1
         $out($i0) = $t0($i0)
       end)))",
                       "(BADTMP 4)", "before anything was written");
}

TEST(ExpanderErrors, NonConstantLoopBounds) {
  expectExpansionError(R"(
    (template (BADLOOP n_)
      (do $i0 = 0, n_-1
         do $i1 = 0, $i0
            $out($i1) = $in($i1)
         end
       end)))",
                       "(BADLOOP 4)", "compile-time constants");
}

TEST(ExpanderErrors, UnknownIntrinsic) {
  expectExpansionError(R"(
    (template (BADFN n_)
      (do $i0 = 0, n_-1
         $out($i0) = NOSUCH(n_ $i0) * $in($i0)
       end)))",
                       "(BADFN 4)", "unknown intrinsic");
}

TEST(ExpanderErrors, UseOfUnassignedScalar) {
  expectExpansionError(R"(
    (template (BADSCALAR n_)
      (do $i0 = 0, n_-1
         $out($i0) = $f9 + $in($i0)
       end)))",
                       "(BADSCALAR 4)", "unassigned scalar");
}

TEST(ExpanderErrors, ConditionRejectionFallsThrough) {
  // A template whose condition never holds leaves the formula unmatched.
  Diagnostics Diags;
  tpl::TemplateRegistry Registry; // No builtins.
  Registry.addAll(parseTemplateString(R"(
    (template (ONLYBIG n_) [n_ > 100]
      (do $i0 = 0, n_-1
         $out($i0) = $in($i0)
       end)))",
                                      Diags));
  FormulaRef F = parseFormulaString("(ONLYBIG 4)", Diags);
  ASSERT_TRUE(F);
  lower::Expander Exp(Registry, Diags);
  EXPECT_FALSE(Exp.expand(F, {}));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ExpanderErrors, PatternFormulaRejected) {
  Diagnostics Diags;
  auto Registry = tpl::TemplateRegistry::withBuiltins();
  lower::Expander Exp(Registry, Diags);
  FormulaRef P = makeDFT(IntArg("n_"));
  EXPECT_FALSE(Exp.expand(P, {}));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ExpanderErrors, RealDatatypeRejectsComplexConstants) {
  Diagnostics Diags;
  auto Registry = tpl::TemplateRegistry::withBuiltins();
  lower::Expander Exp(Registry, Diags);
  FormulaRef F = parseFormulaString("(diagonal (1 (0,1)))", Diags);
  ASSERT_TRUE(F);
  lower::ExpandOptions Opts;
  Opts.Datatype = icode::DataType::Real;
  EXPECT_FALSE(Exp.expand(F, Opts));
  EXPECT_NE(Diags.dump().find("real"), std::string::npos);
}

TEST(ExpanderErrors, ComplexTwiddlesUnderRealDatatypeDiagnosed) {
  // The TW intrinsic produces complex twiddles; a #datatype real program
  // using (T 4 2) must be rejected with a diagnostic, not compiled with
  // silently wrong semantics.
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  auto Units = C.compileSource("#datatype real\n(T 4 2)", Opts);
  EXPECT_FALSE(Units);
  EXPECT_NE(Diags.dump().find("complex constants under #datatype real"),
            std::string::npos)
      << Diags.dump();
}

} // namespace
