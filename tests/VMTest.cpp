//===- tests/VMTest.cpp - I-code interpreter tests -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "vm/Executor.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::icode;
using namespace spl::test;

namespace {

TEST(VM, StraightLineComplexOps) {
  Program P;
  P.InSize = 2;
  P.OutSize = 4;
  P.NumFltTemps = 1;
  auto In0 = Operand::vecElem(VecIn, Affine(0));
  auto In1 = Operand::vecElem(VecIn, Affine(1));
  P.Body = {
      Instr::bin(Op::Add, Operand::vecElem(VecOut, Affine(0)), In0, In1),
      Instr::bin(Op::Sub, Operand::vecElem(VecOut, Affine(1)), In0, In1),
      Instr::bin(Op::Mul, Operand::vecElem(VecOut, Affine(2)), In0, In1),
      Instr::bin(Op::Div, Operand::vecElem(VecOut, Affine(3)), In0, In1),
  };
  ASSERT_EQ(P.verify(), "");
  vm::Executor VM(P);
  std::vector<Cplx> X = {Cplx(1, 2), Cplx(3, -1)}, Y;
  VM.run(X, Y);
  EXPECT_EQ(Y[0], X[0] + X[1]);
  EXPECT_EQ(Y[1], X[0] - X[1]);
  EXPECT_EQ(Y[2], X[0] * X[1]);
  EXPECT_LT(std::abs(Y[3] - X[0] / X[1]), 1e-15);
}

TEST(VM, ZeroTripLoopSkipsBody) {
  Program P;
  P.InSize = P.OutSize = 1;
  P.NumLoopVars = 1;
  P.Body = {
      Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                  Operand::fltConst(Cplx(5, 0))),
      Instr::loop(0, 0, -1), // Empty range.
      Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                  Operand::fltConst(Cplx(9, 0))),
      Instr::end(),
  };
  vm::Executor VM(P);
  std::vector<Cplx> X = {Cplx(0, 0)}, Y;
  VM.run(X, Y);
  EXPECT_EQ(Y[0], Cplx(5, 0));
}

TEST(VM, NestedLoopsAndAffineSubscripts) {
  // y[3*i + j] = x[3*i + j] doubled, via nested loops (4x3).
  Program P;
  P.InSize = P.OutSize = 12;
  P.NumLoopVars = 2;
  Affine Idx = Affine::var(0, 3).plus(Affine::var(1));
  P.Body = {
      Instr::loop(0, 0, 3),
      Instr::loop(1, 0, 2),
      Instr::bin(Op::Add, Operand::vecElem(VecOut, Idx),
                 Operand::vecElem(VecIn, Idx),
                 Operand::vecElem(VecIn, Idx)),
      Instr::end(),
      Instr::end(),
  };
  vm::Executor VM(P);
  std::vector<Cplx> X = randomVector(12), Y;
  VM.run(X, Y);
  for (int I = 0; I < 12; ++I)
    EXPECT_EQ(Y[I], X[I] + X[I]);
}

TEST(VM, TableReferences) {
  Program P;
  P.InSize = P.OutSize = 4;
  P.NumLoopVars = 1;
  P.Tables.push_back({Cplx(1, 0), Cplx(2, 0), Cplx(3, 0), Cplx(4, 0)});
  P.Body = {
      Instr::loop(0, 0, 3),
      Instr::bin(Op::Mul, Operand::vecElem(VecOut, Affine::var(0)),
                 Operand::tableElem(0, Affine::var(0)),
                 Operand::vecElem(VecIn, Affine::var(0))),
      Instr::end(),
  };
  vm::Executor VM(P);
  std::vector<Cplx> X = randomVector(4), Y;
  VM.run(X, Y);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Y[I], X[I] * Cplx(I + 1, 0));
  EXPECT_GT(VM.workingSetBytes(), 0u);
}

TEST(VM, IntrinsicOperandsEvaluateOnTheFly) {
  // Pre-intrinsic-eval programs are runnable: y[i] = W(4, i) * x[i].
  Program P;
  P.InSize = P.OutSize = 4;
  P.NumLoopVars = 1;
  P.Body = {
      Instr::loop(0, 0, 3),
      Instr::bin(Op::Mul, Operand::vecElem(VecOut, Affine::var(0)),
                 Operand::intrinsic("W", {IntExpr::mkConst(4),
                                          IntExpr::mkVar(0)}),
                 Operand::vecElem(VecIn, Affine::var(0))),
      Instr::end(),
  };
  vm::Executor VM(P);
  std::vector<Cplx> X = {Cplx(1, 0), Cplx(1, 0), Cplx(1, 0), Cplx(1, 0)}, Y;
  VM.run(X, Y);
  EXPECT_EQ(Y[0], Cplx(1, 0));
  EXPECT_EQ(Y[1], Cplx(0, -1));
  EXPECT_EQ(Y[2], Cplx(-1, 0));
  EXPECT_EQ(Y[3], Cplx(0, 1));
}

TEST(VM, RealModeBuffers) {
  Program P;
  P.Type = DataType::Real;
  P.InSize = P.OutSize = 3;
  P.Body = {
      Instr::neg(Operand::vecElem(VecOut, Affine(0)),
                 Operand::vecElem(VecIn, Affine(2))),
      Instr::copy(Operand::vecElem(VecOut, Affine(1)),
                  Operand::fltConst(Cplx(7, 0))),
      Instr::bin(Op::Mul, Operand::vecElem(VecOut, Affine(2)),
                 Operand::vecElem(VecIn, Affine(0)),
                 Operand::vecElem(VecIn, Affine(1))),
  };
  vm::Executor VM(P);
  EXPECT_TRUE(VM.isReal());
  EXPECT_EQ(VM.inputLen(), 3);
  std::vector<double> X = {2, 3, 4}, Y;
  VM.runReal(X, Y);
  EXPECT_EQ(Y[0], -4);
  EXPECT_EQ(Y[1], 7);
  EXPECT_EQ(Y[2], 6);
}

TEST(VM, LoweredProgramsDoubleBufferLengths) {
  Program P;
  P.Type = DataType::Real;
  P.LoweredToReal = true;
  P.InSize = P.OutSize = 4; // Logical complex elements.
  P.Body = {Instr::copy(Operand::vecElem(VecOut, Affine(0)),
                        Operand::vecElem(VecIn, Affine(0)))};
  vm::Executor VM(P);
  EXPECT_EQ(VM.inputLen(), 8);
  EXPECT_EQ(VM.outputLen(), 8);
}

TEST(VM, TempVectorsPersistAcrossRuns) {
  // Writing a temp then reading it must work; a second run must not see
  // stale data affecting the result (program fully defines its output).
  Program P;
  P.InSize = P.OutSize = 1;
  P.TempVecSizes = {2};
  P.Body = {
      Instr::copy(Operand::vecElem(FirstTempVec, Affine(0)),
                  Operand::vecElem(VecIn, Affine(0))),
      Instr::bin(Op::Add, Operand::vecElem(VecOut, Affine(0)),
                 Operand::vecElem(FirstTempVec, Affine(0)),
                 Operand::vecElem(FirstTempVec, Affine(0))),
  };
  vm::Executor VM(P);
  std::vector<Cplx> X = {Cplx(3, 1)}, Y;
  VM.run(X, Y);
  EXPECT_EQ(Y[0], Cplx(6, 2));
  X[0] = Cplx(-1, 0);
  VM.run(X, Y);
  EXPECT_EQ(Y[0], Cplx(-2, 0));
}

TEST(VM, SequentialLoopsReuseVariables) {
  Program P;
  P.InSize = P.OutSize = 4;
  P.NumLoopVars = 1;
  P.Body = {
      Instr::loop(0, 0, 1),
      Instr::copy(Operand::vecElem(VecOut, Affine::var(0)),
                  Operand::vecElem(VecIn, Affine::var(0))),
      Instr::end(),
      Instr::loop(0, 2, 3),
      Instr::neg(Operand::vecElem(VecOut, Affine::var(0)),
                 Operand::vecElem(VecIn, Affine::var(0))),
      Instr::end(),
  };
  vm::Executor VM(P);
  std::vector<Cplx> X = randomVector(4), Y;
  VM.run(X, Y);
  EXPECT_EQ(Y[0], X[0]);
  EXPECT_EQ(Y[1], X[1]);
  EXPECT_EQ(Y[2], -X[2]);
  EXPECT_EQ(Y[3], -X[3]);
}

} // namespace
