//===- tests/TransformsTest.cpp - Transform registry tests --------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the transform registry (src/transforms) and the transform
/// definitions behind it: catalog lookups and datatype policies, the dense
/// oracle matrices (dct3 as the dct2 transpose, rdft's halfcomplex rows),
/// rule-vs-matrix parity for every recursive generator rule, and the
/// Kronecker composition of N-D oracles.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "gen/Rules.h"
#include "ir/Transforms.h"
#include "transforms/Registry.h"

#include <gtest/gtest.h>

using namespace spl;

namespace {

TEST(Registry, CatalogLookupsAndNames) {
  for (const char *Name : {"fft", "wht", "rdft", "dct2", "dct3", "dct4"}) {
    const transforms::TransformInfo *TI = transforms::lookup(Name);
    ASSERT_NE(TI, nullptr) << Name;
    EXPECT_STREQ(TI->Name, Name);
    // The diagnostics string must mention every registered transform.
    EXPECT_NE(transforms::supportedNames().find(Name), std::string::npos);
  }
  EXPECT_EQ(transforms::lookup("dct5"), nullptr);
  EXPECT_EQ(transforms::lookup(""), nullptr);
  EXPECT_EQ(transforms::all().size(), 6u);
}

TEST(Registry, DatatypePolicies) {
  const auto *Fft = transforms::lookup("fft");
  const auto *Wht = transforms::lookup("wht");
  const auto *Rdft = transforms::lookup("rdft");
  const auto *Dct2 = transforms::lookup("dct2");
  ASSERT_TRUE(Fft && Wht && Rdft && Dct2);

  EXPECT_TRUE(transforms::allowsDatatype(*Fft, "complex"));
  EXPECT_FALSE(transforms::allowsDatatype(*Fft, "real"));
  // wht kernels compile either way (the pre-registry behavior).
  EXPECT_TRUE(transforms::allowsDatatype(*Wht, "real"));
  EXPECT_TRUE(transforms::allowsDatatype(*Wht, "complex"));
  // rdft is real-in by definition; the complex kernel is an internal
  // detail (KernelDatatype), not a spec-level option.
  EXPECT_TRUE(transforms::allowsDatatype(*Rdft, "real"));
  EXPECT_FALSE(transforms::allowsDatatype(*Rdft, "complex"));
  EXPECT_STREQ(Rdft->NaturalDatatype, "real");
  EXPECT_STREQ(Rdft->KernelDatatype, "complex");
  EXPECT_FALSE(transforms::allowsDatatype(*Dct2, "complex"));
  // Never match a substring or an empty token.
  EXPECT_FALSE(transforms::allowsDatatype(*Wht, "re"));
  EXPECT_FALSE(transforms::allowsDatatype(*Wht, ""));
}

TEST(Registry, SizeRules) {
  const auto *Fft = transforms::lookup("fft");
  const auto *Rdft = transforms::lookup("rdft");
  ASSERT_TRUE(Fft && Rdft);
  EXPECT_TRUE(Fft->ValidSize(64, 16));
  EXPECT_TRUE(Fft->ValidSize(6, 16)); // Dense leaf below the bound.
  EXPECT_FALSE(Fft->ValidSize(48, 16));
  EXPECT_FALSE(Fft->ValidSize(1, 16));
  EXPECT_TRUE(Rdft->ValidSize(64, 16));
  EXPECT_FALSE(Rdft->ValidSize(6, 16)); // Strict powers of two.
  EXPECT_FALSE(Rdft->SupportsND);       // Halfcomplex packing is 1-D.
  EXPECT_TRUE(Fft->SupportsND);
}

TEST(Transforms, Dct3IsDct2Transpose) {
  for (std::int64_t N : {2, 4, 8, 16}) {
    Matrix A = dct3Matrix(N), B = dct2Matrix(N);
    double Max = 0;
    for (size_t R = 0; R != A.rows(); ++R)
      for (size_t C = 0; C != A.cols(); ++C)
        Max = std::max(Max, std::abs(A.at(R, C) - B.at(C, R)));
    EXPECT_EQ(Max, 0.0) << "N=" << N;
  }
}

TEST(Transforms, RdftMatrixHasHalfcomplexRows) {
  const std::int64_t N = 8;
  Matrix M = rdftMatrix(N);
  // Row 0 is the DC sum; row N/2 alternates +-1 (the Nyquist bin); rows
  // above N/2 carry the imaginary parts Im Y_k = -sin terms.
  for (std::int64_t J = 0; J != N; ++J) {
    EXPECT_EQ(M.at(0, J), Cplx(1, 0));
    EXPECT_NEAR(M.at(N / 2, J).real(), J % 2 ? -1.0 : 1.0, 1e-12);
    EXPECT_EQ(M.at(N / 2, J).imag(), 0.0);
  }
  for (std::int64_t K = 1; K != N / 2; ++K)
    for (std::int64_t J = 0; J != N; ++J) {
      EXPECT_NEAR(M.at(N - K, J).real(),
                  -std::sin(2 * M_PI * static_cast<double>(K * J) /
                            static_cast<double>(N)),
                  1e-12)
          << "K=" << K << " J=" << J;
      EXPECT_EQ(M.at(N - K, J).imag(), 0.0);
    }
}

TEST(Transforms, RecursiveRulesMatchDenseOracles) {
  // Every registry rule must expand to a formula whose dense semantics are
  // exactly the transform's oracle matrix. This is the contract that lets
  // the planner compile the rule instead of the O(N^2) matrix.
  for (std::int64_t N : {2, 4, 8, 16, 32}) {
    EXPECT_LT(gen::recursiveDCT2(N)->toMatrix().maxAbsDiff(dct2Matrix(N)),
              1e-12)
        << "dct2 N=" << N;
    EXPECT_LT(gen::recursiveDCT3(N)->toMatrix().maxAbsDiff(dct3Matrix(N)),
              1e-12)
        << "dct3 N=" << N;
    EXPECT_LT(gen::recursiveDCT4(N)->toMatrix().maxAbsDiff(dct4Matrix(N)),
              1e-12)
        << "dct4 N=" << N;
    EXPECT_LT(gen::recursiveRDFT(N)->toMatrix().maxAbsDiff(rdftMatrix(N)),
              1e-12)
        << "rdft N=" << N;
  }
}

TEST(Transforms, RdftRuleEntrywiseReal) {
  // The extraction matrix times the complex DFT is entrywise real: the
  // conjugate-pair combinations cancel every imaginary part exactly, so
  // the halfcomplex fold in the runtime never drops information.
  Matrix M = gen::recursiveRDFT(16)->toMatrix();
  double MaxImag = 0;
  for (size_t R = 0; R != M.rows(); ++R)
    for (size_t C = 0; C != M.cols(); ++C)
      MaxImag = std::max(MaxImag, std::abs(M.at(R, C).imag()));
  EXPECT_LT(MaxImag, 1e-12);
}

TEST(Registry, OracleMatrixKronsPerDimension) {
  const auto *Fft = transforms::lookup("fft");
  const auto *Dct2 = transforms::lookup("dct2");
  ASSERT_TRUE(Fft && Dct2);

  // One dimension is the plain oracle.
  EXPECT_EQ(transforms::oracleMatrix(*Fft, {8}).maxAbsDiff(dftMatrix(8)),
            0.0);
  // Two dimensions: row-major row-column transform = kron of the oracles.
  Matrix Want = dftMatrix(4).kron(dftMatrix(8));
  EXPECT_EQ(transforms::oracleMatrix(*Fft, {4, 8}).maxAbsDiff(Want), 0.0);
  // Mixed transform kinds never mix: dct2 krons dct2.
  Matrix D = dct2Matrix(4).kron(dct2Matrix(4));
  EXPECT_EQ(transforms::oracleMatrix(*Dct2, {4, 4}).maxAbsDiff(D), 0.0);
  // Three dimensions associate left-to-right.
  Matrix T = dftMatrix(2).kron(dftMatrix(4)).kron(dftMatrix(2));
  EXPECT_EQ(transforms::oracleMatrix(*Fft, {2, 4, 2}).maxAbsDiff(T), 0.0);
}

} // namespace
