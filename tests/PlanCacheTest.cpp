//===- tests/PlanCacheTest.cpp - Persistent plan cache tests ------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the wisdom subsystem: serialization round-trips, tolerance of
/// corrupt files, version/host invalidation, warm-vs-cold search equality
/// (a warm run performs zero candidate evaluations), and determinism of the
/// parallel search across thread counts.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Parser.h"
#include "ir/Transforms.h"
#include "ir/Builder.h"
#include "search/DPSearch.h"
#include "search/PlanCache.h"
#include "support/StrUtil.h"
#include "telemetry/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

using namespace spl;

namespace {

driver::CompilerOptions searchOptions() {
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 16; // Keep tests fast.
  return Opts;
}

std::string tempPath(const std::string &Name) {
  std::string Path = testing::TempDir() + Name;
  std::remove(Path.c_str());
  return Path;
}

search::PlanKey testKey(std::int64_t N) {
  search::PlanKey K;
  K.Transform = "fft";
  K.Size = N;
  K.Datatype = "complex";
  K.UnrollThreshold = 16;
  K.Evaluator = "opcount";
  K.Host = search::PlanCache::hostFingerprint();
  return K;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  std::string Out, Line;
  while (std::getline(In, Line))
    Out += Line + "\n";
  return Out;
}

TEST(PlanCache, KeyStringIsCanonical) {
  search::PlanKey K = testKey(16);
  K.Host = "a1b2c3d4e5f60708";
  EXPECT_EQ(K.str(), "fft 16 complex B16 opcount a1b2c3d4e5f60708");
}

TEST(PlanCache, HostFingerprintIsStableHex) {
  const std::string &A = search::PlanCache::hostFingerprint();
  const std::string &B = search::PlanCache::hostFingerprint();
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.size(), 16u);
  EXPECT_EQ(A.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(PlanCache, SaveLoadRoundTrip) {
  std::string Path = tempPath("spl_wisdom_roundtrip");
  Diagnostics D1;
  search::PlanCache C1(D1);
  C1.insert(testKey(8),
            {{makeDFT(8)->print(), 3.5}, {makeDFT(8)->print(), 4.25}});
  C1.insert(testKey(16), {{makeDFT(16)->print(), 1.0e-6}});
  ASSERT_TRUE(C1.save(Path));

  Diagnostics D2;
  search::PlanCache C2(D2);
  ASSERT_TRUE(C2.load(Path));
  EXPECT_EQ(C2.size(), 2u);

  auto E8 = C2.lookup(testKey(8));
  ASSERT_TRUE(E8);
  ASSERT_EQ(E8->size(), 2u);
  EXPECT_EQ((*E8)[0].FormulaText, makeDFT(8)->print());
  EXPECT_DOUBLE_EQ((*E8)[0].Cost, 3.5);
  EXPECT_DOUBLE_EQ((*E8)[1].Cost, 4.25);

  auto E16 = C2.lookup(testKey(16));
  ASSERT_TRUE(E16);
  EXPECT_DOUBLE_EQ((*E16)[0].Cost, 1.0e-6);

  // The recorded text parses back to a real formula of the right size.
  Diagnostics PD;
  FormulaRef Back = parseFormulaString((*E16)[0].FormulaText, PD);
  ASSERT_TRUE(Back) << PD.dump();
  EXPECT_EQ(Back->inSize(), 16);
  EXPECT_FALSE(D2.hasErrors());
  std::remove(Path.c_str());
}

TEST(PlanCache, ConcurrentSaversLoseNoEntries) {
  // Each saver holds one distinct key and all save to the same file at
  // once. save() is read-merge-write-rename; without the advisory flock
  // around that window, two savers merge against the same on-disk state
  // and the later rename drops the earlier writer's key. flock locks live
  // on the open file description, so same-process threads contend exactly
  // like separate processes do.
  std::string Path = tempPath("spl_wisdom_flock");
  const int N = 8;
  std::vector<std::thread> Ts;
  std::atomic<int> SaveFailures{0};
  for (int I = 0; I != N; ++I)
    Ts.emplace_back([&, I] {
      Diagnostics D;
      search::PlanCache C(D);
      C.insert(testKey(8 << I), {{makeDFT(8)->print(), 1.0 + I}});
      // Save twice: the second pass re-merges everyone else's entries too.
      for (int Pass = 0; Pass != 2; ++Pass)
        if (!C.save(Path))
          SaveFailures.fetch_add(1);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(SaveFailures.load(), 0);

  Diagnostics D2;
  search::PlanCache Reloaded(D2);
  ASSERT_TRUE(Reloaded.load(Path));
  EXPECT_EQ(Reloaded.stats().Skipped, 0u) << "corrupt lines after races";
  EXPECT_EQ(Reloaded.size(), static_cast<size_t>(N))
      << "a concurrent saver's entries were lost";
  for (int I = 0; I != N; ++I)
    EXPECT_TRUE(Reloaded.lookup(testKey(8 << I))) << "missing key " << I;
  std::remove(Path.c_str());
  std::remove((Path + ".lock").c_str());
}

TEST(PlanCache, SaveMergesWithExistingFile) {
  std::string Path = tempPath("spl_wisdom_merge");
  Diagnostics D1;
  search::PlanCache C1(D1);
  C1.insert(testKey(8), {{makeDFT(8)->print(), 1.0}});
  ASSERT_TRUE(C1.save(Path));

  // A different process' cache saves a different key to the same file.
  Diagnostics D2;
  search::PlanCache C2(D2);
  C2.insert(testKey(32), {{makeDFT(32)->print(), 2.0}});
  ASSERT_TRUE(C2.save(Path));

  Diagnostics D3;
  search::PlanCache C3(D3);
  ASSERT_TRUE(C3.load(Path));
  EXPECT_EQ(C3.size(), 2u);
  EXPECT_TRUE(C3.lookup(testKey(8)));
  EXPECT_TRUE(C3.lookup(testKey(32)));

  // Memory wins over disk for the same key.
  Diagnostics D4;
  search::PlanCache C4(D4);
  C4.insert(testKey(8), {{makeDFT(8)->print(), 9.0}});
  ASSERT_TRUE(C4.save(Path));
  Diagnostics D5;
  search::PlanCache C5(D5);
  ASSERT_TRUE(C5.load(Path));
  auto E8 = C5.lookup(testKey(8));
  ASSERT_TRUE(E8);
  EXPECT_DOUBLE_EQ((*E8)[0].Cost, 9.0);
  std::remove(Path.c_str());
}

TEST(PlanCache, CorruptLinesAreSkippedWithDiagnostics) {
  std::string Path = tempPath("spl_wisdom_corrupt");
  Diagnostics D1;
  search::PlanCache C1(D1);
  C1.insert(testKey(8), {{makeDFT(8)->print(), 1.5}});
  ASSERT_TRUE(C1.save(Path));

  {
    std::ofstream Out(Path, std::ios::app);
    Out << "complete garbage\n";
    Out << "plan too few fields\n";
    Out << "plan fft 4 complex B16 opcount "
        << search::PlanCache::hostFingerprint() << " 0 notacost | (F 4)\n";
    Out << "plan fft 4 complex B16 opcount "
        << search::PlanCache::hostFingerprint() << " 0 1.5 |\n";
  }

  // The skips must also surface in the telemetry registry (corrupt lines
  // used to be invisible to metrics).
  telemetry::setMetricsEnabled(true);
  telemetry::resetAllMetrics();

  Diagnostics D2;
  search::PlanCache C2(D2);
  ASSERT_TRUE(C2.load(Path)); // Bad lines never fail the whole load.
  EXPECT_EQ(C2.stats().Skipped, 4u);
  EXPECT_EQ(C2.stats().Loaded, 1u);
  EXPECT_FALSE(D2.hasErrors()); // Warnings only.
  EXPECT_GE(D2.all().size(), 4u);

  EXPECT_EQ(telemetry::counter("wisdom.corrupt_lines").value(), 4u);
  EXPECT_EQ(telemetry::counter("wisdom.loaded").value(), 1u);

  // The good entry survived, and the registry counts the hit.
  auto E8 = C2.lookup(testKey(8));
  ASSERT_TRUE(E8);
  EXPECT_DOUBLE_EQ((*E8)[0].Cost, 1.5);
  EXPECT_EQ(telemetry::counter("wisdom.hits").value(), 1u);
  EXPECT_EQ(telemetry::counter("wisdom.misses").value(), 0u);

  telemetry::setMetricsEnabled(false);
  telemetry::resetAllMetrics();
  std::remove(Path.c_str());
}

TEST(PlanCache, VersionMismatchInvalidatesWholeFile) {
  std::string Path = tempPath("spl_wisdom_version");
  {
    std::ofstream Out(Path);
    Out << "spl-wisdom v999\n";
    Out << "plan fft 8 complex B16 opcount "
        << search::PlanCache::hostFingerprint() << " 0 1.0 | (F 8)\n";
  }
  Diagnostics D;
  search::PlanCache C(D);
  EXPECT_FALSE(C.load(Path));
  EXPECT_EQ(C.size(), 0u);
  EXPECT_FALSE(D.hasErrors());    // Invalidation is a warning, not an error.
  EXPECT_GE(D.all().size(), 1u);
  std::remove(Path.c_str());
}

TEST(PlanCache, HostMismatchNeverHits) {
  Diagnostics D;
  search::PlanCache C(D);
  search::PlanKey Foreign = testKey(8);
  Foreign.Host = "0123456789abcdef";
  C.insert(Foreign, {{makeDFT(8)->print(), 1.0}});
  // Same key on the running machine misses: host is part of the key, so
  // plans timed elsewhere are carried but never served here.
  ASSERT_NE(Foreign.Host, search::PlanCache::hostFingerprint());
  EXPECT_FALSE(C.lookup(testKey(8)));
  EXPECT_TRUE(C.lookup(Foreign));
}

TEST(PlanCache, WisdomFileIsVersionedText) {
  std::string Path = tempPath("spl_wisdom_header");
  Diagnostics D;
  search::PlanCache C(D);
  C.insert(testKey(8), {{makeDFT(8)->print(), 1.0}});
  ASSERT_TRUE(C.save(Path));
  std::string Text = slurp(Path);
  EXPECT_EQ(Text.rfind("spl-wisdom v3\n", 0), 0u) << Text;
  // Each plan line is "plan <16-hex-checksum> <payload>"; v3 payloads carry
  // the codegen variant token between the cost and the "|".
  EXPECT_NE(Text.find(" fft 8 complex B16 opcount "), std::string::npos)
      << Text;
  EXPECT_NE(Text.find(" scalar | "), std::string::npos) << Text;
  size_t PlanAt = Text.find("plan ");
  ASSERT_NE(PlanAt, std::string::npos);
  std::string Checksum = Text.substr(PlanAt + 5, 16);
  EXPECT_EQ(Checksum.find_first_not_of("0123456789abcdef"),
            std::string::npos)
      << Checksum;
  std::remove(Path.c_str());
}

TEST(PlanCache, VariantTokenRoundTripsAndV2FilesStillLoad) {
  // v3 round-trip: a vector-winner entry keeps its variant across
  // save/load; entries without an explicit variant default to scalar.
  std::string Path = tempPath("spl_wisdom_variant");
  Diagnostics D1;
  search::PlanCache C1(D1);
  C1.insert(testKey(8), {{makeDFT(8)->print(), 1.5,
                          codegen::CodegenVariant::Vector},
                         {makeDFT(8)->print(), 2.5}});
  ASSERT_TRUE(C1.save(Path));
  std::string Text = slurp(Path);
  EXPECT_NE(Text.find(" vector | "), std::string::npos) << Text;

  Diagnostics D2;
  search::PlanCache C2(D2);
  ASSERT_TRUE(C2.load(Path));
  auto E8 = C2.lookup(testKey(8));
  ASSERT_TRUE(E8);
  ASSERT_EQ(E8->size(), 2u);
  EXPECT_EQ((*E8)[0].Variant, codegen::CodegenVariant::Vector);
  EXPECT_EQ((*E8)[1].Variant, codegen::CodegenVariant::Scalar);
  std::remove(Path.c_str());

  // Backward compatibility: a v2 file (no variant token in the payload)
  // still loads, with every entry read as scalar.
  std::string V2Path = tempPath("spl_wisdom_v2compat");
  {
    std::string Payload = "fft 8 complex B16 opcount " +
                          search::PlanCache::hostFingerprint() + " 0 1.5 | " +
                          makeDFT(8)->print();
    std::ofstream Out(V2Path);
    Out << "spl-wisdom v2\n";
    Out << "plan " << fnv1aHex(Payload) << ' ' << Payload << '\n';
  }
  Diagnostics DV;
  search::PlanCache CV(DV);
  ASSERT_TRUE(CV.load(V2Path));
  EXPECT_EQ(CV.stats().Skipped, 0u);
  EXPECT_EQ(CV.stats().Loaded, 1u);
  auto V2E = CV.lookup(testKey(8));
  ASSERT_TRUE(V2E);
  EXPECT_DOUBLE_EQ((*V2E)[0].Cost, 1.5);
  EXPECT_EQ((*V2E)[0].Variant, codegen::CodegenVariant::Scalar);
  EXPECT_FALSE(DV.hasErrors());
  std::remove(V2Path.c_str());
}

TEST(PlanCache, BitFlippedLinesFailChecksumAndAreRewritten) {
  std::string Path = tempPath("spl_wisdom_bitflip");
  Diagnostics D1;
  search::PlanCache C1(D1);
  C1.insert(testKey(8), {{makeDFT(8)->print(), 1.5}});
  C1.insert(testKey(16), {{makeDFT(16)->print(), 2.5}});
  ASSERT_TRUE(C1.save(Path));

  // Flip one character inside the *payload* of the size-16 line (past the
  // "plan <checksum> " prefix) and truncate a copy of the size-8 line.
  std::string Text = slurp(Path);
  size_t Line16 = Text.find(" 16 complex");
  ASSERT_NE(Line16, std::string::npos);
  Text[Line16 + 1] = Text[Line16 + 1] == '1' ? '9' : '1';
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << Text;
    Out << "plan 0123456789abcdef fft 4 complex"; // Truncated mid-line.
  }

  Diagnostics D2;
  search::PlanCache C2(D2);
  ASSERT_TRUE(C2.load(Path)); // Corruption never fails the whole load.
  EXPECT_EQ(C2.stats().Skipped, 2u);
  EXPECT_EQ(C2.stats().Loaded, 1u);
  EXPECT_FALSE(C2.lookup(testKey(16))); // The flipped entry is gone...
  auto E8 = C2.lookup(testKey(8));      // ...the intact one survives.
  ASSERT_TRUE(E8);
  EXPECT_DOUBLE_EQ((*E8)[0].Cost, 1.5);

  // save() rewrites the file clean: a fresh load sees no corruption.
  ASSERT_TRUE(C2.save(Path));
  Diagnostics D3;
  search::PlanCache C3(D3);
  ASSERT_TRUE(C3.load(Path));
  EXPECT_EQ(C3.stats().Skipped, 0u);
  EXPECT_EQ(C3.stats().Loaded, 1u);
  std::remove(Path.c_str());
}

TEST(PlanCache, WarmSearchMatchesColdAndSkipsEvaluation) {
  std::string Path = tempPath("spl_wisdom_warm");
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;

  // Cold run: search fresh, record wisdom.
  Diagnostics D1;
  search::OpCountEvaluator E1(D1, searchOptions());
  search::PlanCache W1(D1);
  search::DPSearch S1(E1, D1, SOpts, &W1);
  auto Cold = S1.searchLarge(256);
  ASSERT_FALSE(Cold.empty()) << D1.dump();
  EXPECT_GT(E1.evaluations(), 0u);
  ASSERT_TRUE(W1.save(Path));

  // Warm run: fresh engine + evaluator, wisdom loaded from disk.
  Diagnostics D2;
  search::OpCountEvaluator E2(D2, searchOptions());
  search::PlanCache W2(D2);
  ASSERT_TRUE(W2.load(Path));
  search::DPSearch S2(E2, D2, SOpts, &W2);
  auto Warm = S2.searchLarge(256);

  ASSERT_EQ(Warm.size(), Cold.size());
  for (size_t I = 0; I != Warm.size(); ++I) {
    EXPECT_EQ(Warm[I].Formula->print(), Cold[I].Formula->print());
    EXPECT_DOUBLE_EQ(Warm[I].Cost, Cold[I].Cost);
  }
  // The acceptance bar: zero candidate evaluations (hence zero timing runs)
  // for cached sizes, and the cache reports hits.
  EXPECT_EQ(E2.evaluations(), 0u);
  EXPECT_GE(W2.stats().Hits, 1u);
  EXPECT_NE(W2.summary().find("hit"), std::string::npos);

  // best() on a cached size is also free.
  auto Best = S2.best(256);
  ASSERT_TRUE(Best);
  EXPECT_EQ(Best->Formula->print(), Cold.front().Formula->print());
  EXPECT_EQ(E2.evaluations(), 0u);
  std::remove(Path.c_str());
}

TEST(PlanCache, WisdomKeyReflectsEvaluatorAndSpace) {
  Diagnostics D;
  search::OpCountEvaluator E(D, searchOptions());
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  SOpts.KeepBest = 3;
  search::DPSearch S(E, D, SOpts);
  search::PlanKey K = S.wisdomKey(64);
  EXPECT_EQ(K.Transform, "fft-L16-k3");
  EXPECT_EQ(K.Size, 64);
  EXPECT_EQ(K.Datatype, "complex");
  EXPECT_EQ(K.UnrollThreshold, 16);
  EXPECT_EQ(K.Evaluator, "opcount");
  EXPECT_EQ(K.Host, search::PlanCache::hostFingerprint());
}

TEST(PlanCache, StaleFormulaTextDegradesToMiss) {
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  Diagnostics D;
  search::OpCountEvaluator E(D, searchOptions());
  search::PlanCache W(D);
  search::DPSearch S(E, D, SOpts, &W);
  // Poison the exact key the search will use with unparsable text and with
  // a wrong-size formula; the search must fall back to a fresh search.
  W.insert(S.wisdomKey(8), {{"(this does not parse", 1.0}});
  auto B8 = S.best(8);
  ASSERT_TRUE(B8);
  EXPECT_LT(B8->Formula->toMatrix().maxAbsDiff(dftMatrix(8)), 1e-9);

  W.insert(S.wisdomKey(4), {{"(F 8)", 1.0}}); // Size mismatch.
  auto B4 = S.best(4);
  ASSERT_TRUE(B4);
  EXPECT_LT(B4->Formula->toMatrix().maxAbsDiff(dftMatrix(4)), 1e-9);
  EXPECT_FALSE(D.hasErrors()); // Stale wisdom warns, never errors.
}

TEST(PlanCache, SearchThreadsDoNotChangeTheWinners) {
  // The multi-thread determinism bar: same plans for any --search-threads.
  driver::CompilerOptions Opts = searchOptions();
  auto RunSearch = [&](int Threads) {
    Diagnostics D;
    search::OpCountEvaluator E(D, Opts);
    search::SearchOptions SOpts;
    SOpts.MaxLeaf = 16;
    SOpts.KeepBest = 3;
    SOpts.Threads = Threads;
    search::DPSearch S(E, D, SOpts);
    std::vector<std::string> Out;
    for (const auto &[N, Cand] : S.searchSmall(16))
      Out.push_back(std::to_string(N) + ": " + Cand.Formula->print() + " @ " +
                    std::to_string(Cand.Cost));
    for (const auto &Cand : S.searchLarge(512))
      Out.push_back(Cand.Formula->print() + " @ " + std::to_string(Cand.Cost));
    EXPECT_FALSE(D.hasErrors()) << D.dump();
    return Out;
  };

  auto Serial = RunSearch(1);
  auto Par2 = RunSearch(2);
  auto Par4 = RunSearch(4);
  EXPECT_EQ(Serial, Par2);
  EXPECT_EQ(Serial, Par4);
  ASSERT_FALSE(Serial.empty());
}

TEST(PlanCache, ParallelSearchWinnersAreCorrectFFTs) {
  Diagnostics D;
  search::OpCountEvaluator E(D, searchOptions());
  search::SearchOptions SOpts;
  SOpts.MaxLeaf = 16;
  SOpts.Threads = 4;
  search::DPSearch S(E, D, SOpts);
  auto Entries = S.searchLarge(128);
  ASSERT_FALSE(Entries.empty()) << D.dump();
  for (const auto &Cand : Entries)
    EXPECT_LT(Cand.Formula->toMatrix().maxAbsDiff(dftMatrix(128)), 1e-8)
        << Cand.Formula->print();
}

} // namespace
