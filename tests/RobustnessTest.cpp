//===- tests/RobustnessTest.cpp - Parser robustness tests --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frontend must never crash: malformed, truncated, and adversarial
/// inputs produce diagnostics (or parse cleanly), not undefined behaviour.
/// Includes a deterministic mutation fuzzer over valid programs.
///
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <gtest/gtest.h>

#include <random>

using namespace spl;

namespace {

/// Parses and, on success, expands nothing — we only care that the frontend
/// terminates and reports through diagnostics.
void mustNotCrash(const std::string &Source) {
  Diagnostics Diags;
  Parser P(Source, Diags);
  auto Prog = P.parseProgram();
  if (!Prog) {
    EXPECT_TRUE(Diags.hasErrors()) << Source;
  }
}

TEST(Robustness, EmptyAndWhitespaceOnly) {
  mustNotCrash("");
  mustNotCrash("   \n\t  ");
  mustNotCrash("; just a comment\n");
  mustNotCrash("#subname alone\n");
}

TEST(Robustness, TruncatedForms) {
  mustNotCrash("(");
  mustNotCrash("(compose");
  mustNotCrash("(compose (F 2)");
  mustNotCrash("(matrix ((1 2)");
  mustNotCrash("(template (F n_)");
  mustNotCrash("(template (F n_) [n_ > ");
  mustNotCrash("(define");
  mustNotCrash("(define X");
  mustNotCrash("(diagonal (");
}

TEST(Robustness, UnbalancedAndStray) {
  mustNotCrash(")");
  mustNotCrash("))) (((");
  mustNotCrash("(F 2))");
  mustNotCrash("]");
  mustNotCrash("(F 2) ] [");
  mustNotCrash("& | ! =");
}

TEST(Robustness, BadNumbersAndSymbols) {
  mustNotCrash("(F 999999999999999999999999)");
  mustNotCrash("(F -2)");
  mustNotCrash("(F 2.5)");
  mustNotCrash("(I 0)");
  mustNotCrash("(L 0 0)");
  mustNotCrash("(T 4 0)");
  mustNotCrash("(diagonal (nonsense))");
  mustNotCrash("(diagonal (sqrt(-1 unclosed))");
  mustNotCrash("(permutation (1 2 9))");
}

TEST(Robustness, BadTemplates) {
  mustNotCrash("(template 42 (x))");
  mustNotCrash("(template (F n_) (garbage here = =))");
  mustNotCrash("(template (F n_) (do $i0 = 0))");
  mustNotCrash("(template (F n_) (do $i0 = 0, n_-1 end end))");
  mustNotCrash("(template (F n_) ($out(0) = A_($in)))");
  mustNotCrash("(template (compose A_ B_) (A_($in, $out, 0, 0, 1)))");
}

TEST(Robustness, BadDirectives) {
  mustNotCrash("#datatype purple\n(F 2)");
  mustNotCrash("#language cobol\n(F 2)");
  mustNotCrash("#unroll sideways\n(F 2)");
  mustNotCrash("#subname\n(F 2)");
  mustNotCrash("#\n(F 2)");
}

TEST(Robustness, DeepNestingTerminates) {
  std::string Deep;
  for (int I = 0; I < 200; ++I)
    Deep += "(tensor (I 1) ";
  Deep += "(F 2)";
  for (int I = 0; I < 200; ++I)
    Deep += ")";
  mustNotCrash(Deep);
}

class MutationFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MutationFuzzTest, MutatedProgramsNeverCrashTheFrontend) {
  const std::string Base = R"(
(define F4 (compose (tensor (F 2) (I 2)) (T 4 2)
                    (tensor (I 2) (F 2)) (L 4 2)))
(template (J n_) [n_ >= 1]
  (do $i0 = 0, n_-1
     $out($i0) = $in(n_-1-$i0)
   end))
#subname prog
(compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
)";
  std::mt19937 Gen(GetParam());
  std::string S = Base;
  int Mutations = 1 + Gen() % 8;
  for (int M = 0; M != Mutations; ++M) {
    size_t Pos = Gen() % S.size();
    switch (Gen() % 4) {
    case 0:
      S.erase(Pos, 1 + Gen() % 5);
      break;
    case 1:
      S.insert(Pos, 1, static_cast<char>("()[]#;$_0a"[Gen() % 10]));
      break;
    case 2:
      S[Pos] = static_cast<char>(32 + Gen() % 95);
      break;
    default:
      std::swap(S[Pos], S[Gen() % S.size()]);
      break;
    }
  }
  mustNotCrash(S);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MutationFuzzTest,
                         ::testing::Range(1000u, 1080u));

} // namespace
