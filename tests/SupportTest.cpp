//===- tests/SupportTest.cpp - Support library tests -----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Matrix.h"
#include "support/Diagnostics.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <random>

using namespace spl;

namespace {

TEST(StrUtil, FormatDoubleRoundTripsExactly) {
  std::mt19937_64 Gen(77);
  std::uniform_real_distribution<double> Uni(-1e3, 1e3);
  std::uniform_int_distribution<int> Exp(-300, 300);
  for (int I = 0; I < 2000; ++I) {
    double V = Uni(Gen) * std::pow(10.0, Exp(Gen) / 10);
    std::string S = formatDouble(V);
    double Back = std::strtod(S.c_str(), nullptr);
    EXPECT_EQ(Back, V) << S;
  }
}

TEST(StrUtil, FormatDoubleIsAFloatingToken) {
  // Every rendering must parse as a floating constant in C/Fortran (carry
  // '.', 'e' or 'E'), including integral values.
  for (double V : {1.0, -3.0, 0.0, 42.0, 1e20, 0.5, -0.25}) {
    std::string S = formatDouble(V);
    EXPECT_NE(S.find_first_of(".eE"), std::string::npos) << S;
  }
  EXPECT_EQ(formatDouble(0.0), "0.0");
  EXPECT_EQ(formatDouble(-0.0), "-0.0");
  EXPECT_EQ(formatDouble(1.0), "1.0");
}

TEST(StrUtil, FormatComplex) {
  EXPECT_EQ(formatComplex(Cplx(1.5, 0)), "1.5");
  EXPECT_EQ(formatComplex(Cplx(0, -1)), "(0.0,-1.0)");
  EXPECT_EQ(formatComplex(Cplx(-2, 3)), "(-2.0,3.0)");
}

TEST(StrUtil, JoinStartsWithToLower) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
  EXPECT_TRUE(startsWith("$in_size", "$in"));
  EXPECT_FALSE(startsWith("$i", "$in"));
  EXPECT_EQ(toLower("FoRtRan77"), "fortran77");
}

TEST(Diagnostics, CountsAndFormats) {
  Diagnostics D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "something odd");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 7), "bad thing");
  D.note(SourceLoc(), "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.all().size(), 3u);
  std::string Dump = D.dump();
  EXPECT_NE(Dump.find("warning: 1:2: something odd"), std::string::npos);
  EXPECT_NE(Dump.find("error: 3:7: bad thing"), std::string::npos);
  EXPECT_NE(Dump.find("note: context"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.all().empty());
}

TEST(SourceLoc, Validity) {
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(12, 5).str(), "12:5");
}

} // namespace
