//===- tests/SupportTest.cpp - Support library tests -----------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Matrix.h"
#include "support/CircuitBreaker.h"
#include "support/Deadline.h"
#include "support/Diagnostics.h"
#include "support/FaultInjection.h"
#include "support/StrUtil.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <random>
#include <thread>

using namespace spl;

namespace {

TEST(StrUtil, FormatDoubleRoundTripsExactly) {
  std::mt19937_64 Gen(77);
  std::uniform_real_distribution<double> Uni(-1e3, 1e3);
  std::uniform_int_distribution<int> Exp(-300, 300);
  for (int I = 0; I < 2000; ++I) {
    double V = Uni(Gen) * std::pow(10.0, Exp(Gen) / 10);
    std::string S = formatDouble(V);
    double Back = std::strtod(S.c_str(), nullptr);
    EXPECT_EQ(Back, V) << S;
  }
}

TEST(StrUtil, FormatDoubleIsAFloatingToken) {
  // Every rendering must parse as a floating constant in C/Fortran (carry
  // '.', 'e' or 'E'), including integral values.
  for (double V : {1.0, -3.0, 0.0, 42.0, 1e20, 0.5, -0.25}) {
    std::string S = formatDouble(V);
    EXPECT_NE(S.find_first_of(".eE"), std::string::npos) << S;
  }
  EXPECT_EQ(formatDouble(0.0), "0.0");
  EXPECT_EQ(formatDouble(-0.0), "-0.0");
  EXPECT_EQ(formatDouble(1.0), "1.0");
}

TEST(StrUtil, FormatComplex) {
  EXPECT_EQ(formatComplex(Cplx(1.5, 0)), "1.5");
  EXPECT_EQ(formatComplex(Cplx(0, -1)), "(0.0,-1.0)");
  EXPECT_EQ(formatComplex(Cplx(-2, 3)), "(-2.0,3.0)");
}

TEST(StrUtil, JoinStartsWithToLower) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
  EXPECT_TRUE(startsWith("$in_size", "$in"));
  EXPECT_FALSE(startsWith("$i", "$in"));
  EXPECT_EQ(toLower("FoRtRan77"), "fortran77");
}

TEST(Diagnostics, CountsAndFormats) {
  Diagnostics D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(1, 2), "something odd");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(3, 7), "bad thing");
  D.note(SourceLoc(), "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.all().size(), 3u);
  std::string Dump = D.dump();
  EXPECT_NE(Dump.find("warning: 1:2: something odd"), std::string::npos);
  EXPECT_NE(Dump.find("error: 3:7: bad thing"), std::string::npos);
  EXPECT_NE(Dump.find("note: context"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.all().empty());
}

TEST(SourceLoc, Validity) {
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(12, 5).str(), "12:5");
}

TEST(Deadline, UnboundedNeverExpires) {
  support::Deadline D;
  EXPECT_TRUE(D.unbounded());
  EXPECT_FALSE(D.expired());
  EXPECT_TRUE(std::isinf(D.remainingSeconds()));
  // afterMs(0) and negative budgets mean "no deadline", matching the wire
  // protocol's 0 = unbounded.
  EXPECT_TRUE(support::Deadline::afterMs(0).unbounded());
  EXPECT_TRUE(support::Deadline::afterMs(-5).unbounded());
  // Slicing an unbounded deadline stays unbounded.
  EXPECT_TRUE(D.slice(0.5).unbounded());
}

TEST(Deadline, BudgetExpires) {
  support::Deadline D = support::Deadline::afterMs(1);
  EXPECT_FALSE(D.unbounded());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(D.expired());
  EXPECT_LE(D.remainingSeconds(), 0.0); // Goes negative past the deadline.
  EXPECT_EQ(D.remainingMs(), 0);        // But the ms view clamps at zero.
}

TEST(Deadline, CancelPropagatesThroughSlices) {
  support::Deadline D = support::Deadline::afterMs(60000);
  support::Deadline Slice = D.slice(0.5);
  EXPECT_FALSE(Slice.expired());
  EXPECT_LE(Slice.remainingSeconds(), D.remainingSeconds());
  // The slice shares the parent's cancel token: cancelling either side
  // expires both immediately.
  D.cancel();
  EXPECT_TRUE(D.cancelled());
  EXPECT_TRUE(Slice.expired());
  EXPECT_EQ(Slice.remainingSeconds(), 0.0);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailuresAndProbes) {
  if (fault::armed())
    GTEST_SKIP() << "external fault matrix armed (breaker-trip would fire)";
  support::CircuitBreaker B;
  // Disabled (the default): always allow, outcomes are ignored.
  EXPECT_FALSE(B.enabled());
  EXPECT_TRUE(B.allow());
  B.recordFailure();
  B.recordFailure();
  EXPECT_TRUE(B.allow());

  B.configure(2, 50);
  EXPECT_TRUE(B.enabled());
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Closed);
  // A success between failures resets the consecutive count.
  EXPECT_TRUE(B.allow());
  B.recordFailure();
  EXPECT_TRUE(B.allow());
  B.recordSuccess();
  EXPECT_TRUE(B.allow());
  B.recordFailure();
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Closed);
  EXPECT_TRUE(B.allow());
  B.recordFailure();
  // Two consecutive failures: open, and every attempt fails fast.
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Open);
  EXPECT_FALSE(B.allow());
  EXPECT_NE(B.describe().find("circuit breaker open"), std::string::npos);

  // After the cooldown exactly one half-open probe is admitted; its
  // failure reopens the breaker with a fresh cooldown.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(B.allow());
  EXPECT_FALSE(B.allow()); // The probe is in flight; nobody else enters.
  B.recordFailure();
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Open);
  EXPECT_FALSE(B.allow());

  // A successful probe closes it again.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(B.allow());
  B.recordSuccess();
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Closed);
  EXPECT_TRUE(B.allow());
  B.recordSuccess();
}

TEST(CircuitBreaker, TripAndResetAreImmediate) {
  if (fault::armed())
    GTEST_SKIP() << "external fault matrix armed (breaker-trip would fire)";
  support::CircuitBreaker B;
  B.configure(5, 50000);
  B.trip(); // The breaker-trip fault site calls exactly this.
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Open);
  EXPECT_FALSE(B.allow());
  B.reset();
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Closed);
  EXPECT_TRUE(B.allow());
  B.recordSuccess();
}

} // namespace
