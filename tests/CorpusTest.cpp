//===- tests/CorpusTest.cpp - .spl file corpus tests -------------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles every .spl program shipped in examples/spl/ through the full
/// pipeline and validates each against its expected semantics in the VM.
/// The corpus path comes from the SPL_CORPUS_DIR compile definition.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "driver/Compiler.h"
#include "ir/Transforms.h"
#include "vm/Executor.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace spl;
using namespace spl::test;

namespace {

std::string corpusFile(const std::string &Name) {
#ifdef SPL_CORPUS_DIR
  std::string Path = std::string(SPL_CORPUS_DIR) + "/" + Name;
#else
  std::string Path = "examples/spl/" + Name;
#endif
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing corpus file " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<driver::CompiledUnit> compileCorpus(const std::string &Name) {
  Diagnostics Diags;
  driver::Compiler C(Diags);
  driver::CompilerOptions Opts;
  Opts.UnrollThreshold = 16;
  auto Units = C.compileSource(corpusFile(Name), Opts);
  EXPECT_TRUE(Units) << Diags.dump();
  return Units ? std::move(*Units) : std::vector<driver::CompiledUnit>();
}

/// Runs a lowered-complex unit against a reference matrix.
void checkComplexUnit(const driver::CompiledUnit &Unit, const Matrix &Want) {
  vm::Executor VM(Unit.Final);
  std::vector<Cplx> X = randomVector(Want.cols());
  std::vector<double> XR(2 * X.size()), YR;
  for (size_t I = 0; I != X.size(); ++I) {
    XR[2 * I] = X[I].real();
    XR[2 * I + 1] = X[I].imag();
  }
  VM.runReal(XR, YR);
  auto Ref = Want.apply(X);
  for (size_t I = 0; I != Ref.size(); ++I)
    EXPECT_LT(std::abs(Cplx(YR[2 * I], YR[2 * I + 1]) - Ref[I]), 1e-9);
}

TEST(Corpus, Fft16) {
  auto Units = compileCorpus("fft16.spl");
  ASSERT_EQ(Units.size(), 1u);
  EXPECT_EQ(Units[0].SubName, "fft16");
  checkComplexUnit(Units[0], dftMatrix(16));
}

TEST(Corpus, I64F2MatchesPaperShape) {
  auto Units = compileCorpus("i64f2.spl");
  ASSERT_EQ(Units.size(), 1u);
  EXPECT_EQ(Units[0].Language, "fortran");
  EXPECT_NE(Units[0].Code.find("subroutine I64F2"), std::string::npos);
  // Semantics: (I 32) (x) (I 2) (x) (F 2) on real data.
  vm::Executor VM(Units[0].Final);
  std::vector<double> X = randomRealVector(128), Y;
  VM.runReal(X, Y);
  for (int I = 0; I < 128; I += 2) {
    EXPECT_NEAR(Y[I], X[I] + X[I + 1], 1e-12);
    EXPECT_NEAR(Y[I + 1], X[I] - X[I + 1], 1e-12);
  }
}

TEST(Corpus, Wht16) {
  auto Units = compileCorpus("wht16.spl");
  ASSERT_EQ(Units.size(), 1u);
  vm::Executor VM(Units[0].Final);
  std::vector<double> X = randomRealVector(16), Y;
  VM.runReal(X, Y);
  Matrix W = whtMatrix(16);
  std::vector<Cplx> XC(16);
  for (int I = 0; I < 16; ++I)
    XC[I] = Cplx(X[I], 0);
  auto Ref = W.apply(XC);
  for (int I = 0; I < 16; ++I)
    EXPECT_NEAR(Y[I], Ref[I].real(), 1e-10);
}

TEST(Corpus, HaarUserTemplate) {
  auto Units = compileCorpus("haar.spl");
  ASSERT_EQ(Units.size(), 1u);
  vm::Executor VM(Units[0].Final);
  std::vector<double> X = {1, 3, 2, 6, 5, 5, 0, 8}, Y;
  VM.runReal(X, Y);
  // After (L 8 2): first half = sums, second half = differences.
  double Sums[] = {4, 8, 10, 8}, Diffs[] = {-2, -4, 0, -8};
  for (int I = 0; I < 4; ++I) {
    EXPECT_NEAR(Y[I], Sums[I], 1e-12);
    EXPECT_NEAR(Y[4 + I], Diffs[I], 1e-12);
  }
}

} // namespace
