//===- tests/ServiceTest.cpp - spld service layer tests -----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the plan-serving service layer (src/service): wire-protocol
/// round trips and malformed-input rejection, then live Server/Client
/// integration over a real Unix-domain socket — plan/execute parity with
/// in-process plans, typed error codes, admission control (BUSY,
/// TOO_LARGE), stats scraping, shutdown draining, and degradation under
/// injected faults.
///
//===----------------------------------------------------------------------===//

#include "search/PlanCache.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/Socket.h"
#include "support/Deadline.h"
#include "support/FaultInjection.h"
#include "telemetry/Metrics.h"
#include "transforms/Registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <set>
#include <thread>

#include <unistd.h>

using namespace spl;
using namespace spl::service;

namespace {

//===----------------------------------------------------------------------===//
// Protocol unit tests (no sockets)
//===----------------------------------------------------------------------===//

TEST(Protocol, HeaderRoundTrip) {
  FrameHeader H;
  H.Type = MsgType::ExecuteReq;
  H.RequestId = 0xDEADBEEF;
  H.BodyLen = 12345;
  std::uint8_t Buf[kHeaderBytes];
  H.encode(Buf);

  FrameHeader Out;
  ASSERT_TRUE(FrameHeader::decode(Buf, Out));
  EXPECT_EQ(Out.Type, MsgType::ExecuteReq);
  EXPECT_EQ(Out.RequestId, 0xDEADBEEFu);
  EXPECT_EQ(Out.BodyLen, 12345u);
}

TEST(Protocol, HeaderRejectsBadMagicAndVersion) {
  FrameHeader H;
  std::uint8_t Buf[kHeaderBytes];
  H.encode(Buf);
  FrameHeader Out;

  std::uint8_t Bad[kHeaderBytes];
  std::memcpy(Bad, Buf, kHeaderBytes);
  Bad[0] ^= 0xFF; // Corrupt the magic.
  EXPECT_FALSE(FrameHeader::decode(Bad, Out));

  std::memcpy(Bad, Buf, kHeaderBytes);
  Bad[4] += 1; // Unsupported version.
  EXPECT_FALSE(FrameHeader::decode(Bad, Out));

  // The floor of the compatibility window still decodes: a v2 client's
  // frames are valid, and the decoded header remembers their revision.
  std::memcpy(Bad, Buf, kHeaderBytes);
  Bad[4] = 2;
  ASSERT_TRUE(FrameHeader::decode(Bad, Out));
  EXPECT_EQ(Out.Version, 2u);
  Bad[4] = 1; // Below the floor.
  EXPECT_FALSE(FrameHeader::decode(Bad, Out));
}

TEST(Protocol, PlanMessagesRoundTrip) {
  PlanRequest Req;
  Req.Spec.Transform = "wht";
  Req.Spec.Size = 64;
  Req.Spec.Datatype = "real";
  Req.Spec.UnrollThreshold = 8;
  Req.Spec.MaxLeaf = 32;
  Req.Spec.Backend = "vm";
  auto Bytes = Req.encode();
  PlanRequest Back;
  ASSERT_TRUE(PlanRequest::decode(Bytes.data(), Bytes.size(), Back));
  EXPECT_EQ(Back.Spec.Transform, "wht");
  EXPECT_EQ(Back.Spec.Size, 64);
  EXPECT_EQ(Back.Spec.Backend, "vm");

  bool OK = false;
  runtime::PlanSpec Spec = Back.Spec.toSpec(OK);
  ASSERT_TRUE(OK);
  EXPECT_EQ(Spec.Want, runtime::Backend::VM);
  EXPECT_EQ(Spec.key(), "wht 64 real B8 L32 vm auto");

  PlanResponse Resp;
  Resp.Key = Spec.key();
  Resp.Backend = "vm";
  Resp.VectorLen = 64;
  Resp.Cost = 2.5;
  Resp.Fallback = true;
  Resp.FallbackReason = "native compile failed";
  Resp.FormulaText = "(F 2)";
  auto RB = Resp.encode();
  PlanResponse RBack;
  ASSERT_TRUE(PlanResponse::decode(RB.data(), RB.size(), RBack));
  EXPECT_EQ(RBack.Key, Resp.Key);
  EXPECT_EQ(RBack.VectorLen, 64);
  EXPECT_DOUBLE_EQ(RBack.Cost, 2.5);
  EXPECT_TRUE(RBack.Fallback);
  EXPECT_EQ(RBack.FallbackReason, "native compile failed");
}

TEST(Protocol, ExecuteMessagesRoundTripBitExact) {
  ExecuteRequest Req;
  Req.Spec.Transform = "fft";
  Req.Spec.Size = 4;
  Req.Count = 2;
  Req.Threads = 3;
  // Bit patterns that punish any text or float conversion on the path.
  Req.Data = {0.1, -0.0, 1e-308, 3.141592653589793, -2.5e17, 0.0, 7.0, -1.0,
              42.0, 1e-17, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0};
  auto Bytes = Req.encode();
  ExecuteRequest Back;
  ASSERT_TRUE(ExecuteRequest::decode(Bytes.data(), Bytes.size(), Back));
  EXPECT_EQ(Back.Count, 2);
  EXPECT_EQ(Back.Threads, 3);
  ASSERT_EQ(Back.Data.size(), Req.Data.size());
  EXPECT_EQ(std::memcmp(Back.Data.data(), Req.Data.data(),
                        Req.Data.size() * sizeof(double)),
            0);

  ExecuteResponse Resp;
  Resp.Count = 2;
  Resp.VectorLen = 8;
  Resp.Data = Req.Data;
  auto RB = Resp.encode();
  ExecuteResponse RBack;
  ASSERT_TRUE(ExecuteResponse::decode(RB.data(), RB.size(), RBack));
  EXPECT_EQ(std::memcmp(RBack.Data.data(), Req.Data.data(),
                        Req.Data.size() * sizeof(double)),
            0);
}

TEST(Protocol, TruncatedBodiesAreRejected) {
  PlanRequest Req;
  Req.Spec.Size = 16;
  auto Bytes = Req.encode();
  PlanRequest Out;
  for (std::size_t Cut = 0; Cut < Bytes.size(); ++Cut)
    EXPECT_FALSE(PlanRequest::decode(Bytes.data(), Cut, Out))
        << "accepted a body truncated to " << Cut << " bytes";

  ExecuteRequest EReq;
  EReq.Spec.Size = 4;
  EReq.Count = 1;
  EReq.Data = {1, 2, 3, 4, 5, 6, 7, 8};
  auto EBytes = EReq.encode();
  ExecuteRequest EOut;
  EXPECT_TRUE(ExecuteRequest::decode(EBytes.data(), EBytes.size(), EOut));
  EXPECT_FALSE(
      ExecuteRequest::decode(EBytes.data(), EBytes.size() - 1, EOut));
  // Trailing garbage is as corrupt as truncation.
  EBytes.push_back(0);
  EXPECT_FALSE(
      ExecuteRequest::decode(EBytes.data(), EBytes.size(), EOut));
}

TEST(Protocol, DeadlineFieldIsVersionGated) {
  // v3 request bodies lead with DeadlineMs; v2 bodies never carried it and
  // must keep decoding as "unbounded". This is the compatibility contract
  // that lets old clients talk to a new daemon unchanged.
  PlanRequest Req;
  Req.Spec.Transform = "fft";
  Req.Spec.Size = 32;
  Req.DeadlineMs = 1500;

  auto V3 = Req.encode(3);
  PlanRequest Out;
  ASSERT_TRUE(PlanRequest::decode(V3.data(), V3.size(), Out, 3));
  EXPECT_EQ(Out.DeadlineMs, 1500u);

  auto V2 = Req.encode(2);
  ASSERT_EQ(V2.size(), V3.size() - 4); // Exactly the DeadlineMs prefix.
  PlanRequest Out2;
  ASSERT_TRUE(PlanRequest::decode(V2.data(), V2.size(), Out2, 2));
  EXPECT_EQ(Out2.DeadlineMs, 0u);
  EXPECT_EQ(Out2.Spec.Size, 32);

  // Truncation inside the deadline prefix fails cleanly, never reads past
  // the buffer, and never half-populates the spec.
  for (std::size_t Cut = 0; Cut < 4; ++Cut)
    EXPECT_FALSE(PlanRequest::decode(V3.data(), Cut, Out))
        << "accepted a v3 body truncated to " << Cut << " bytes";

  ExecuteRequest EReq;
  EReq.Spec.Transform = "wht";
  EReq.Spec.Size = 8;
  EReq.DeadlineMs = 250;
  EReq.Count = 1;
  EReq.Data.assign(8, 1.0);
  auto E3 = EReq.encode(3);
  ExecuteRequest EOut;
  ASSERT_TRUE(ExecuteRequest::decode(E3.data(), E3.size(), EOut, 3));
  EXPECT_EQ(EOut.DeadlineMs, 250u);
  auto E2 = EReq.encode(2);
  ASSERT_EQ(E2.size(), E3.size() - 4);
  ASSERT_TRUE(ExecuteRequest::decode(E2.data(), E2.size(), EOut, 2));
  EXPECT_EQ(EOut.DeadlineMs, 0u);
  ASSERT_EQ(EOut.Data.size(), 8u);
}

TEST(Protocol, StatusMapsOntoCliExitCodes) {
  EXPECT_EQ(statusToExitCode(Status::Ok), 0);
  EXPECT_EQ(statusToExitCode(Status::BadRequest), 2);
  EXPECT_EQ(statusToExitCode(Status::BadSpec), 3);
  EXPECT_EQ(statusToExitCode(Status::PlanFailed), 4);
  EXPECT_EQ(statusToExitCode(Status::ExecFailed), 5);
  // A spent budget has its own exit code so scripts can tell "slow" from
  // "wrong" without parsing stderr.
  EXPECT_EQ(statusToExitCode(Status::DeadlineExceeded), 6);
  EXPECT_STREQ(statusName(Status::DeadlineExceeded), "deadline-exceeded");
  // Service-only statuses collapse onto the execution stage.
  EXPECT_EQ(statusToExitCode(Status::Busy), 5);
  EXPECT_EQ(statusToExitCode(Status::TooLarge), 5);
  EXPECT_EQ(statusToExitCode(Status::ShuttingDown), 5);
  EXPECT_EQ(statusToExitCode(Status::Protocol), 5);
  EXPECT_STREQ(statusName(Status::Busy), "busy");
  EXPECT_STREQ(statusName(Status::TooLarge), "too-large");
}

//===----------------------------------------------------------------------===//
// Server/Client integration
//===----------------------------------------------------------------------===//

/// Starts a Server on a per-test socket and tears it down afterwards.
class ServiceTest : public ::testing::Test {
protected:
  void SetUp() override {
    Path = "/tmp/spl-service-test-" + std::to_string(getpid()) + "-" +
           std::to_string(Seq++) + ".sock";
    telemetry::setMetricsEnabled(true);
  }

  void TearDown() override {
    if (Srv)
      Srv->stop();
    Srv.reset();
    telemetry::setMetricsEnabled(false);
    ::unlink(Path.c_str());
  }

  /// Builds and starts a server; tests tweak \p Mutate for limits.
  void startServer(const std::function<void(ServerOptions &)> &Mutate = {}) {
    ServerOptions Opts;
    Opts.SocketPath = Path;
    Opts.Workers = 4;
    Opts.Planner.UseWisdom = false;
    Opts.Planner.Evaluator = "opcount";
    if (Mutate)
      Mutate(Opts);
    Srv = std::make_unique<Server>(Opts);
    ASSERT_TRUE(Srv->start()) << Srv->diagnostics().dump();
  }

  /// The canonical cheap spec: VM tier, no compiler dependency.
  static runtime::PlanSpec vmSpec(const char *Transform, std::int64_t N) {
    runtime::PlanSpec S;
    S.Transform = Transform;
    S.Size = N;
    S.Want = runtime::Backend::VM;
    return S;
  }

  std::string Path;
  std::unique_ptr<Server> Srv;
  static int Seq;
};

int ServiceTest::Seq = 0;

TEST_F(ServiceTest, PingAndStats) {
  startServer();
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  EXPECT_TRUE(C.ping()) << C.lastError();

  auto Json = C.stats();
  ASSERT_TRUE(Json) << C.lastError();
  // The daemon's own identity plus the process telemetry registry.
  EXPECT_NE(Json->find("\"server\""), std::string::npos);
  EXPECT_NE(Json->find("\"socket\""), std::string::npos);
  EXPECT_NE(Json->find("\"metrics\""), std::string::npos);
  EXPECT_NE(Json->find("spld.requests"), std::string::npos);
}

TEST_F(ServiceTest, PlanExecuteMatchesInProcessBitExact) {
  startServer();
  auto Spec = vmSpec("fft", 16);

  // In-process reference with the same options.
  Diagnostics Diags;
  runtime::PlannerOptions PO;
  PO.UseWisdom = false;
  runtime::Planner Local(Diags, PO);
  auto Ref = Local.plan(Spec);
  ASSERT_TRUE(Ref) << Diags.dump();
  const std::int64_t Len = Ref->vectorLen();

  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  auto PR = C.plan(Spec);
  ASSERT_TRUE(PR) << C.lastError();
  EXPECT_EQ(PR->Key, Spec.key());
  EXPECT_EQ(PR->Backend, std::string("vm"));
  EXPECT_EQ(PR->VectorLen, Len);
  EXPECT_EQ(PR->FormulaText, Ref->formulaText());

  const std::int64_t Count = 8;
  std::vector<double> X(Count * Len), YD(Count * Len), YL(Count * Len);
  for (std::size_t I = 0; I != X.size(); ++I)
    X[I] = std::sin(0.37 * static_cast<double>(I)) * 2.0 - 0.5;
  ASSERT_TRUE(C.execute(Spec, YD.data(), X.data(), Count, Len, 2))
      << C.lastError();
  Ref->executeBatch(YL.data(), X.data(), Count, 1);
  EXPECT_EQ(std::memcmp(YD.data(), YL.data(), YD.size() * sizeof(double)), 0)
      << "daemon and in-process execution disagree bit-for-bit";
}

TEST_F(ServiceTest, ManyClientsShareOneRegistryEntry) {
  startServer();
  auto Spec = vmSpec("wht", 16);
  const int N = 8;
  std::vector<std::thread> Ts;
  std::atomic<int> Failures{0};
  for (int I = 0; I != N; ++I)
    Ts.emplace_back([&] {
      Client C;
      if (!C.connect(Path) || !C.planRetryBusy(Spec))
        Failures.fetch_add(1);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  // All eight clients were served by one planning pass.
  EXPECT_EQ(Srv->registry().size(), 1u);
  auto RS = Srv->registry().stats();
  EXPECT_EQ(RS.Misses, 1u);
  EXPECT_EQ(RS.Hits + RS.Waits, static_cast<std::size_t>(N - 1));
}

TEST_F(ServiceTest, TypedErrorsForBadRequests) {
  startServer();
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();

  // Non-power-of-two: spec validation rejects it.
  auto Bad = C.plan(vmSpec("fft", 20));
  EXPECT_FALSE(Bad);
  EXPECT_EQ(C.lastStatus(), Status::BadSpec) << C.lastError();
  EXPECT_NE(C.lastError().find("error"), std::string::npos);

  // Unknown transform.
  EXPECT_FALSE(C.plan(vmSpec("dst", 16)));
  EXPECT_EQ(C.lastStatus(), Status::BadSpec);

  // Execute payload that disagrees with the plan's vector length.
  auto Spec = vmSpec("wht", 8);
  std::vector<double> X(4), Y(4);
  EXPECT_FALSE(C.execute(Spec, Y.data(), X.data(), 1, 4));
  EXPECT_EQ(C.lastStatus(), Status::BadRequest) << C.lastError();

  // The connection survives typed errors.
  EXPECT_TRUE(C.ping()) << C.lastError();
}

TEST_F(ServiceTest, ExecuteCountOverflowIsRejected) {
  startServer();
  std::string Err;
  int Fd = connectUnix(Path, Err);
  ASSERT_GE(Fd, 0) << Err;

  // Counts chosen so a naive `Count * vectorLen` size check wraps int64
  // to match the payload: 2^61 * 8 == 0 (empty payload) and
  // (2^61 + 1) * 8 == 8 (one vector). Either would have sent executeBatch
  // off the end of the buffers; both must come back BAD_REQUEST.
  ExecuteRequest Wrap;
  Wrap.Spec = WireSpec::fromSpec(vmSpec("wht", 8));
  Wrap.Count = std::int64_t(1) << 61;
  ASSERT_TRUE(writeFrame(Fd, MsgType::ExecuteReq, 7, Wrap.encode()));

  ExecuteRequest Wrap2;
  Wrap2.Spec = WireSpec::fromSpec(vmSpec("wht", 8));
  Wrap2.Count = (std::int64_t(1) << 61) + 1;
  Wrap2.Data.assign(8, 1.0);
  ASSERT_TRUE(writeFrame(Fd, MsgType::ExecuteReq, 8, Wrap2.encode()));

  // Both requests run concurrently on the pool, so the two rejections can
  // come back in either order.
  std::set<std::uint32_t> Answered;
  for (int I = 0; I != 2; ++I) {
    Frame F;
    ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
    ASSERT_EQ(F.Type, MsgType::ErrorResp);
    Answered.insert(F.RequestId);
    ErrorBody E;
    ASSERT_TRUE(ErrorBody::decode(F.Body.data(), F.Body.size(), E));
    EXPECT_EQ(E.Code, Status::BadRequest);
  }
  EXPECT_EQ(Answered, (std::set<std::uint32_t>{7u, 8u}));
  ::close(Fd);
}

TEST_F(ServiceTest, ListenRefusesLiveDaemonSocket) {
  startServer();
  // A second daemon pointed at the same --socket must fail loudly instead
  // of silently unlinking the live daemon's socket and hijacking it.
  std::string Err;
  int Fd = listenUnix(Path, 4, Err);
  EXPECT_LT(Fd, 0);
  EXPECT_NE(Err.find("live daemon"), std::string::npos) << Err;
  // The original daemon is untouched.
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  EXPECT_TRUE(C.ping()) << C.lastError();
}

TEST_F(ServiceTest, ListenReclaimsStaleSocketFile) {
  // A crashed daemon leaves the socket file behind with nobody listening;
  // a fresh listen must detect the stale file and reclaim the path.
  std::string Err;
  int Fd = listenUnix(Path, 4, Err);
  ASSERT_GE(Fd, 0) << Err;
  ::close(Fd); // Crash-like exit: file still on disk, no listener.
  int Fd2 = listenUnix(Path, 4, Err);
  EXPECT_GE(Fd2, 0) << Err;
  if (Fd2 >= 0)
    ::close(Fd2);
}

TEST_F(ServiceTest, OversizedTransformAndFrameAreRejected) {
  startServer([](ServerOptions &O) {
    O.MaxTransformSize = 64;
    O.MaxFrameBytes = 4096;
  });
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();

  EXPECT_FALSE(C.plan(vmSpec("fft", 128)));
  EXPECT_EQ(C.lastStatus(), Status::TooLarge) << C.lastError();

  // 1024 doubles > the 4 KiB frame cap; the server must reject AND keep
  // the connection usable.
  auto Spec = vmSpec("wht", 64);
  std::vector<double> X(1024), Y(1024);
  EXPECT_FALSE(C.execute(Spec, Y.data(), X.data(), 16, 64));
  EXPECT_EQ(C.lastStatus(), Status::TooLarge) << C.lastError();
  EXPECT_TRUE(C.ping()) << C.lastError();

  auto St = Srv->stats();
  EXPECT_EQ(St.RejectedTooLarge, 2u);
}

TEST_F(ServiceTest, PerClientQuotaAnswersBusy) {
  // One worker and a quota of one: a second request pipelined behind a
  // slow plan must bounce with BUSY instead of queueing.
  startServer([](ServerOptions &O) {
    O.Workers = 1;
    O.PerClientInflight = 1;
    O.Planner.Evaluator = "vmtime"; // Timed search: reliably non-instant.
  });
  std::string Err;
  int Fd = connectUnix(Path, Err);
  ASSERT_GE(Fd, 0) << Err;

  PlanRequest Slow;
  Slow.Spec = WireSpec::fromSpec(vmSpec("fft", 64));
  PlanRequest Quick;
  Quick.Spec = WireSpec::fromSpec(vmSpec("wht", 8));
  ASSERT_TRUE(writeFrame(Fd, MsgType::PlanReq, 1, Slow.encode()));
  ASSERT_TRUE(writeFrame(Fd, MsgType::PlanReq, 2, Quick.encode()));

  // First frame back: the immediate BUSY for request 2 (the reader thread
  // rejects before the pool ever sees it).
  Frame F;
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  ASSERT_EQ(F.Type, MsgType::ErrorResp);
  EXPECT_EQ(F.RequestId, 2u);
  ErrorBody E;
  ASSERT_TRUE(ErrorBody::decode(F.Body.data(), F.Body.size(), E));
  EXPECT_EQ(E.Code, Status::Busy);

  // Second frame: the slow plan completes normally.
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  EXPECT_EQ(F.Type, MsgType::PlanResp);
  EXPECT_EQ(F.RequestId, 1u);
  ::close(Fd);

  EXPECT_GE(Srv->stats().RejectedBusy, 1u);
}

TEST_F(ServiceTest, MalformedFrameDropsConnection) {
  startServer();
  std::string Err;
  int Fd = connectUnix(Path, Err);
  ASSERT_GE(Fd, 0) << Err;
  const char Garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(sendAll(Fd, Garbage, sizeof(Garbage) - 1));

  // The server answers with a protocol error, then hangs up.
  Frame F;
  IoStatus St = readFrame(Fd, kDefaultMaxFrameBytes, F);
  if (St == IoStatus::Ok) {
    EXPECT_EQ(F.Type, MsgType::ErrorResp);
    ErrorBody E;
    ASSERT_TRUE(ErrorBody::decode(F.Body.data(), F.Body.size(), E));
    EXPECT_EQ(E.Code, Status::Protocol);
    St = readFrame(Fd, kDefaultMaxFrameBytes, F);
  }
  EXPECT_EQ(St, IoStatus::Closed);
  ::close(Fd);
}

TEST_F(ServiceTest, RequestShutdownWakesBlockedWaiter) {
  startServer();
  std::thread Waiter([&] { Srv->waitForShutdownRequest(); });
  // Give the waiter time to actually block so a store without a held-lock
  // notify (the lost-wakeup bug) would hang this join forever.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Srv->requestShutdown();
  Waiter.join();
  EXPECT_TRUE(Srv->shutdownRequested());
}

TEST_F(ServiceTest, ShutdownRequestDrainsAndStops) {
  startServer();
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  ASSERT_TRUE(C.planRetryBusy(vmSpec("wht", 8))) << C.lastError();
  ASSERT_TRUE(C.shutdownServer()) << C.lastError();
  EXPECT_TRUE(Srv->shutdownRequested());
  Srv->stop();
  // The socket file is gone; new connections fail cleanly.
  Client C2;
  EXPECT_FALSE(C2.connect(Path));
  // Admissions after drain answer SHUTTING_DOWN (exercised via the typed
  // path in admit(); the daemon-side flag is already set pre-stop).
}

TEST_F(ServiceTest, WisdomSurvivesShutdown) {
  std::string Wisdom = Path + ".wisdom";
  startServer([&](ServerOptions &O) {
    O.Planner.UseWisdom = true;
    O.Planner.WisdomPath = Wisdom;
  });
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  ASSERT_TRUE(C.planRetryBusy(vmSpec("fft", 16))) << C.lastError();
  ASSERT_TRUE(C.planRetryBusy(vmSpec("wht", 16))) << C.lastError();
  size_t Held = Srv->planner().wisdom().size();
  EXPECT_GT(Held, 0u);
  Srv->stop();

  Diagnostics Diags;
  search::PlanCache Reloaded(Diags);
  ASSERT_TRUE(Reloaded.load(Wisdom));
  EXPECT_GE(Reloaded.size(), Held) << "wisdom entries lost across shutdown";
  EXPECT_EQ(Reloaded.stats().Skipped, 0u);
  ::unlink(Wisdom.c_str());
}

TEST_F(ServiceTest, V2FramesAreServedAndVersionEchoed) {
  // A v2 client (no DeadlineMs field, version 2 stamped on every header)
  // must get full service, and every response must echo version 2 so the
  // old client's own header validation accepts it.
  startServer();
  std::string Err;
  int Fd = connectUnix(Path, Err);
  ASSERT_GE(Fd, 0) << Err;

  PlanRequest Req;
  Req.Spec = WireSpec::fromSpec(vmSpec("fft", 16));
  ASSERT_TRUE(writeFrame(Fd, MsgType::PlanReq, 21, Req.encode(2), 2));
  Frame F;
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  ASSERT_EQ(F.Type, MsgType::PlanResp) << statusName(Status::Ok);
  EXPECT_EQ(F.RequestId, 21u);
  EXPECT_EQ(F.Version, 2u);
  PlanResponse PR;
  ASSERT_TRUE(PlanResponse::decode(F.Body.data(), F.Body.size(), PR));
  EXPECT_EQ(PR.VectorLen, 32); // Complex interleaved fft 16.

  // Execution over the v2 framing matches a v3 client bit for bit.
  ExecuteRequest EReq;
  EReq.Spec = WireSpec::fromSpec(vmSpec("fft", 16));
  EReq.Count = 1;
  EReq.Data.assign(32, 0.0);
  EReq.Data[0] = 1.0; // Impulse: the FFT is all-ones.
  ASSERT_TRUE(writeFrame(Fd, MsgType::ExecuteReq, 22, EReq.encode(2), 2));
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  ASSERT_EQ(F.Type, MsgType::ExecuteResp);
  EXPECT_EQ(F.Version, 2u);
  ExecuteResponse ER;
  ASSERT_TRUE(ExecuteResponse::decode(F.Body.data(), F.Body.size(), ER));
  ASSERT_EQ(ER.Data.size(), 32u);
  for (std::size_t I = 0; I < ER.Data.size(); ++I)
    EXPECT_EQ(ER.Data[I], (I % 2) == 0 ? 1.0 : 0.0) << "element " << I;
  ::close(Fd);
}

TEST_F(ServiceTest, TruncatedDeadlineFieldGetsTypedError) {
  // A v3 frame whose body ends inside the DeadlineMs prefix is malformed,
  // not fatal: the daemon answers a typed BAD_REQUEST and keeps serving
  // the connection.
  startServer();
  std::string Err;
  int Fd = connectUnix(Path, Err);
  ASSERT_GE(Fd, 0) << Err;

  PlanRequest Req;
  Req.Spec = WireSpec::fromSpec(vmSpec("wht", 8));
  auto Full = Req.encode();
  for (std::size_t Cut : {std::size_t(0), std::size_t(2), std::size_t(3)}) {
    std::vector<std::uint8_t> Short(Full.begin(), Full.begin() + Cut);
    ASSERT_TRUE(writeFrame(Fd, MsgType::PlanReq, 30 + Cut, Short));
    Frame F;
    ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
    ASSERT_EQ(F.Type, MsgType::ErrorResp) << "cut at " << Cut;
    ErrorBody E;
    ASSERT_TRUE(ErrorBody::decode(F.Body.data(), F.Body.size(), E));
    EXPECT_EQ(E.Code, Status::BadRequest) << "cut at " << Cut;
  }

  // The connection survived all three malformed bodies.
  ASSERT_TRUE(writeFrame(Fd, MsgType::PlanReq, 40, Full));
  Frame F;
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  EXPECT_EQ(F.Type, MsgType::PlanResp);
  ::close(Fd);
}

TEST_F(ServiceTest, ExpiredInQueueIsRejectedWithTypedStatus) {
  // One worker, occupied by a timed search: a request whose entire budget
  // is 1 ms expires while queued and must come back DEADLINE_EXCEEDED
  // without the pool ever running it.
  startServer([](ServerOptions &O) {
    O.Workers = 1;
    O.Planner.Evaluator = "vmtime"; // Timed search: reliably non-instant.
  });
  std::string Err;
  int Fd = connectUnix(Path, Err);
  ASSERT_GE(Fd, 0) << Err;
  PlanRequest Slow;
  Slow.Spec = WireSpec::fromSpec(vmSpec("fft", 128));
  ASSERT_TRUE(writeFrame(Fd, MsgType::PlanReq, 1, Slow.encode()));
  // Give the worker time to pick the slow search up so the next request
  // is guaranteed to queue behind it rather than race it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Client C;
  C.setDeadline(support::Deadline::afterMs(1));
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  EXPECT_FALSE(C.plan(vmSpec("wht", 8)));
  EXPECT_EQ(C.lastStatus(), Status::DeadlineExceeded) << C.lastError();
  EXPECT_NE(C.lastError().find("deadline"), std::string::npos)
      << C.lastError();

  // The slow plan behind it is unharmed, and the rejection is visible in
  // the daemon's own accounting.
  Frame F;
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  EXPECT_EQ(F.Type, MsgType::PlanResp);
  ::close(Fd);
  EXPECT_GE(Srv->stats().RejectedDeadline, 1u);
}

TEST(Protocol, ShapeFieldIsVersionGated) {
  // v4 appends the shape block after the v2 spec fields; v2/v3 bodies
  // never carry it and must keep decoding with an empty (1-D) shape. The
  // deadline stays the first u32 so peekDeadlineMs works on every v>=3
  // frame regardless of the spec's rank.
  PlanRequest Req;
  Req.Spec.Transform = "fft";
  Req.Spec.Size = 0;
  Req.Spec.Shape = {8, 4};
  Req.DeadlineMs = 10;

  auto V4 = Req.encode(); // Default version is 4.
  PlanRequest Out;
  ASSERT_TRUE(PlanRequest::decode(V4.data(), V4.size(), Out));
  ASSERT_EQ(Out.Spec.Shape.size(), 2u);
  EXPECT_EQ(Out.Spec.Shape[0], 8);
  EXPECT_EQ(Out.Spec.Shape[1], 4);
  EXPECT_EQ(Out.DeadlineMs, 10u);

  // Exactly the rank word plus two i64 dims shorter at v3.
  auto V3 = Req.encode(3);
  ASSERT_EQ(V3.size(), V4.size() - 4 - 2 * 8);
  PlanRequest Out3;
  ASSERT_TRUE(PlanRequest::decode(V3.data(), V3.size(), Out3, 3));
  EXPECT_TRUE(Out3.Spec.Shape.empty());
  EXPECT_EQ(Out3.DeadlineMs, 10u);

  // A hostile rank is rejected up front, never trusted as a loop bound.
  std::vector<std::uint8_t> Evil(V4.begin(), V4.end() - (4 + 2 * 8));
  WireWriter W(Evil);
  W.u32(kMaxShapeRank + 1);
  EXPECT_FALSE(PlanRequest::decode(Evil.data(), Evil.size(), Out));

  // Execute requests carry the same spec encoding.
  ExecuteRequest EReq;
  EReq.Spec = Req.Spec;
  EReq.Count = 1;
  EReq.Data.assign(64, 0.5);
  auto E4 = EReq.encode();
  ExecuteRequest EOut;
  ASSERT_TRUE(ExecuteRequest::decode(E4.data(), E4.size(), EOut));
  ASSERT_EQ(EOut.Spec.Shape.size(), 2u);
  EXPECT_EQ(EOut.Spec.Shape[1], 4);
  ASSERT_EQ(EOut.Data.size(), 64u);
}

TEST_F(ServiceTest, V4ShapedPlanExecuteRoundTrip) {
  // A 2-D row-column spec over the default (v4) client: the daemon plans
  // the kron formula, keys it distinctly, and transforms an impulse into
  // the all-ones spectrum.
  startServer();
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  runtime::PlanSpec S = vmSpec("fft", 0);
  S.Shape = {8, 8};
  auto PR = C.planRetryBusy(S);
  ASSERT_TRUE(PR) << C.lastError();
  EXPECT_EQ(PR->VectorLen, 128); // 64 complex points interleaved.
  EXPECT_NE(PR->Key.find("S8x8"), std::string::npos) << PR->Key;

  std::vector<double> X(128, 0.0), Y(128, 0.0);
  X[0] = 1.0;
  ASSERT_TRUE(C.executeRetryBusy(S, Y.data(), X.data(), 1, 128, 1))
      << C.lastError();
  for (int I = 0; I != 128; ++I)
    EXPECT_NEAR(Y[I], (I % 2) == 0 ? 1.0 : 0.0, 1e-10) << "element " << I;
}

TEST_F(ServiceTest, OversizedShapeProductIsRejected) {
  // The admission cap applies to the shape product, not the (possibly
  // zero) Size field a shaped request carries.
  startServer([](ServerOptions &O) { O.MaxTransformSize = 64; });
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  runtime::PlanSpec S = vmSpec("fft", 0);
  S.Shape = {16, 16};
  EXPECT_FALSE(C.plan(S));
  EXPECT_EQ(C.lastStatus(), Status::TooLarge) << C.lastError();
}

TEST_F(ServiceTest, V3FramesAreServedAndVersionEchoed) {
  // A v3 client (deadline field, no shape block) must get full service
  // from the v4 daemon, with version 3 echoed on every response.
  startServer();
  std::string Err;
  int Fd = connectUnix(Path, Err);
  ASSERT_GE(Fd, 0) << Err;

  PlanRequest Req;
  Req.Spec = WireSpec::fromSpec(vmSpec("fft", 16));
  Req.DeadlineMs = 0;
  ASSERT_TRUE(writeFrame(Fd, MsgType::PlanReq, 31, Req.encode(3), 3));
  Frame F;
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  ASSERT_EQ(F.Type, MsgType::PlanResp);
  EXPECT_EQ(F.Version, 3u);
  PlanResponse PR;
  ASSERT_TRUE(PlanResponse::decode(F.Body.data(), F.Body.size(), PR));
  EXPECT_EQ(PR.VectorLen, 32);

  ExecuteRequest EReq;
  EReq.Spec = WireSpec::fromSpec(vmSpec("fft", 16));
  EReq.Count = 1;
  EReq.Data.assign(32, 0.0);
  EReq.Data[0] = 1.0;
  ASSERT_TRUE(writeFrame(Fd, MsgType::ExecuteReq, 32, EReq.encode(3), 3));
  ASSERT_EQ(readFrame(Fd, kDefaultMaxFrameBytes, F), IoStatus::Ok);
  ASSERT_EQ(F.Type, MsgType::ExecuteResp);
  EXPECT_EQ(F.Version, 3u);
  ExecuteResponse ER;
  ASSERT_TRUE(ExecuteResponse::decode(F.Body.data(), F.Body.size(), ER));
  ASSERT_EQ(ER.Data.size(), 32u);
  for (std::size_t I = 0; I < ER.Data.size(); ++I)
    EXPECT_EQ(ER.Data[I], (I % 2) == 0 ? 1.0 : 0.0) << "element " << I;
  ::close(Fd);
}

TEST_F(ServiceTest, RegistryTransformsServedWithOracleParity) {
  // rdft and dct2 over the daemon: halfcomplex and real layouts ride the
  // same wire as the complex fft, and the served numbers match the dense
  // registry oracle.
  startServer();
  Client C;
  ASSERT_TRUE(C.connect(Path)) << C.lastError();
  for (const char *Name : {"rdft", "dct2"}) {
    const transforms::TransformInfo *TI = transforms::lookup(Name);
    ASSERT_NE(TI, nullptr) << Name;
    runtime::PlanSpec S = vmSpec(Name, 16);
    auto PR = C.planRetryBusy(S);
    ASSERT_TRUE(PR) << Name << ": " << C.lastError();
    EXPECT_EQ(PR->VectorLen, 16) << Name; // Real in, N doubles out.

    std::vector<double> X(16), Y(16, 0.0);
    for (int I = 0; I != 16; ++I)
      X[I] = 0.25 * (I % 5) - 0.5;
    ASSERT_TRUE(C.executeRetryBusy(S, Y.data(), X.data(), 1, 16, 1))
        << Name << ": " << C.lastError();

    Matrix M = transforms::oracleMatrix(*TI, {16});
    std::vector<Cplx> In(16);
    for (int I = 0; I != 16; ++I)
      In[I] = Cplx(X[I], 0.0);
    std::vector<Cplx> Ref = M.apply(In);
    for (int I = 0; I != 16; ++I)
      EXPECT_NEAR(Y[I], Ref[I].real(), 1e-10) << Name << " element " << I;
  }
}

TEST_F(ServiceTest, DegradesUnderInjectedFaultInsteadOfFailing) {
  if (fault::armed())
    GTEST_SKIP() << "external fault matrix armed";
  setenv("SPL_FAULT", "native-compile,vm-exec", 1);
  fault::reset();
  startServer();
  Client C;
  bool Connected = C.connect(Path);
  std::optional<PlanResponse> PR;
  if (Connected) {
    runtime::PlanSpec Spec = vmSpec("fft", 8);
    Spec.Want = runtime::Backend::Auto;
    PR = C.planRetryBusy(Spec);
  }
  unsetenv("SPL_FAULT");
  fault::reset();
  ASSERT_TRUE(Connected);
  ASSERT_TRUE(PR) << C.lastError();
  // Both upper tiers were injected away; the daemon still served a plan.
  EXPECT_EQ(PR->Backend, std::string("oracle"));
  EXPECT_TRUE(PR->Fallback);
}

} // namespace
