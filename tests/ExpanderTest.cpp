//===- tests/ExpanderTest.cpp - Expansion correctness ----------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of the compiler front half: for every
/// formula, expanding to i-code and executing in the VM computes the same
/// matrix-vector product as the dense matrix semantics.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/Parser.h"
#include "ir/Builder.h"
#include "lower/Expander.h"
#include "templates/Registry.h"
#include "vm/Executor.h"

#include <gtest/gtest.h>

using namespace spl;
using namespace spl::test;

namespace {

/// Expands \p F and checks VM output against the dense oracle.
void checkFormula(const FormulaRef &F, std::int64_t UnrollThreshold = 0,
                  double Tol = 1e-9) {
  ASSERT_TRUE(F);
  Diagnostics Diags;
  auto Registry = tpl::TemplateRegistry::withBuiltins();
  lower::Expander Exp(Registry, Diags);
  lower::ExpandOptions Opts;
  Opts.UnrollThreshold = UnrollThreshold;
  auto Prog = Exp.expand(F, Opts);
  ASSERT_TRUE(Prog) << Diags.dump();
  EXPECT_EQ(Prog->verify(), "");

  vm::Executor VM(*Prog);
  std::vector<Cplx> X = randomVector(Prog->InSize);
  std::vector<Cplx> Got;
  VM.run(X, Got);

  std::vector<Cplx> Want = F->toMatrix().apply(X);
  EXPECT_LT(maxAbsDiff(Got, Want), Tol) << "formula: " << F->print();
}

void checkSource(const std::string &Source) {
  Diagnostics Diags;
  FormulaRef F = parseFormulaString(Source, Diags);
  ASSERT_TRUE(F) << Diags.dump();
  checkFormula(F);
}

TEST(Expander, IdentityCopies) {
  checkFormula(makeIdentity(1));
  checkFormula(makeIdentity(7));
}

TEST(Expander, DFTByDefinition) {
  for (std::int64_t N : {1, 2, 3, 4, 5, 8, 12})
    checkFormula(makeDFT(N));
}

TEST(Expander, StridePermutation) {
  checkFormula(makeStride(4, 2));
  checkFormula(makeStride(6, 2));
  checkFormula(makeStride(6, 3));
  checkFormula(makeStride(12, 4));
  checkFormula(makeStride(16, 16));
  checkFormula(makeStride(8, 1));
}

TEST(Expander, TwiddleMatrix) {
  checkFormula(makeTwiddle(4, 2));
  checkFormula(makeTwiddle(8, 4));
  checkFormula(makeTwiddle(12, 3));
}

TEST(Expander, TransformsByDefinition) {
  checkFormula(makeWHT(8));
  checkFormula(makeDCT2(6));
  checkFormula(makeDCT4(5));
}

TEST(Expander, ComposeUsesTemporary) {
  checkFormula(makeCompose(makeDFT(4), makeStride(4, 2)));
  checkFormula(
      makeCompose({makeTwiddle(4, 2), makeDFT(4), makeStride(4, 2)}));
}

TEST(Expander, TensorWithIdentityLeft) {
  checkFormula(makeTensor(makeIdentity(3), makeDFT(2)));
  checkFormula(makeTensor(makeIdentity(2), makeDFT(4)));
}

TEST(Expander, TensorWithIdentityRight) {
  checkFormula(makeTensor(makeDFT(2), makeIdentity(3)));
  checkFormula(makeTensor(makeDFT(4), makeIdentity(2)));
}

TEST(Expander, GeneralTensorSplits) {
  checkFormula(makeTensor(makeDFT(2), makeDFT(3)));
  checkFormula(makeTensor(makeDFT(3), makeDFT(2)));
  checkFormula(makeTensor(makeDFT(2), makeTensor(makeDFT(2), makeDFT(2))));
}

TEST(Expander, DirectSum) {
  checkFormula(makeDirectSum(makeDFT(2), makeIdentity(3)));
  checkFormula(makeDirectSum({makeDFT(2), makeDFT(3), makeIdentity(2)}));
}

TEST(Expander, ExplicitMatrices) {
  checkFormula(makeGenMatrix({{Cplx(1, 0), Cplx(2, 0)},
                              {Cplx(0, 1), Cplx(-1, 0)},
                              {Cplx(0, 0), Cplx(3, 0)}}));
  checkFormula(makeDiagonal({Cplx(1, 0), Cplx(0, -1), Cplx(2, 0.5)}));
  checkFormula(makePermutation({3, 1, 2}));
}

TEST(Expander, CooleyTukeyF4) {
  // F4 = (F2 (x) I2) T^4_2 (I2 (x) F2) L^4_2 (Equation 3).
  checkSource("(compose (tensor (F 2) (I 2)) (T 4 2) "
              "(tensor (I 2) (F 2)) (L 4 2))");
}

TEST(Expander, PaperFFT16Program) {
  // The paper's Section 2.2 example.
  Diagnostics Diags;
  Parser P(R"((define F4 (compose (tensor (F 2) (I 2)) (T 4 2)
                                  (tensor (I 2) (F 2)) (L 4 2)))
              #subname fft16
              (compose (tensor F4 (I 4)) (T 16 4)
                       (tensor (I 4) F4) (L 16 4)))",
           Diags);
  auto Prog = P.parseProgram();
  ASSERT_TRUE(Prog) << Diags.dump();
  ASSERT_EQ(Prog->Items.size(), 1u);
  EXPECT_EQ(Prog->Items[0].Dirs.SubName, "fft16");
  checkFormula(Prog->Items[0].Formula);
}

TEST(Expander, UnrollThresholdStillCorrect) {
  Diagnostics Diags;
  FormulaRef F = parseFormulaString(
      "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))",
      Diags);
  ASSERT_TRUE(F) << Diags.dump();
  checkFormula(F, /*UnrollThreshold=*/0);
  checkFormula(F, /*UnrollThreshold=*/4);
  checkFormula(F, /*UnrollThreshold=*/64);
}

TEST(Expander, SizeInferenceForUserTemplates) {
  // A user-defined "reverse" matrix (J n): y_i = x_{n-1-i}.
  Diagnostics Diags;
  auto Registry = tpl::TemplateRegistry::withBuiltins();
  auto UserDefs = parseTemplateString(R"(
    (template (J n_) [n_ >= 1]
      (do $i0 = 0, n_-1
         $out($i0) = $in(n_-1-$i0)
       end)))",
                                      Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  ASSERT_EQ(UserDefs.size(), 1u);
  Registry.addAll(std::move(UserDefs));

  FormulaRef J4 = parseFormulaString("(J 4)", Diags);
  ASSERT_TRUE(J4);
  lower::Expander Exp(Registry, Diags);
  auto Sizes = Exp.inferSizes(J4);
  ASSERT_TRUE(Sizes) << Diags.dump();
  EXPECT_EQ(Sizes->first, 4);
  EXPECT_EQ(Sizes->second, 4);

  auto Prog = Exp.expand(J4, {});
  ASSERT_TRUE(Prog) << Diags.dump();
  vm::Executor VM(*Prog);
  std::vector<Cplx> X = randomVector(4), Y;
  VM.run(X, Y);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Y[I], X[3 - I]);
}

TEST(Expander, UserTemplateOverridesBuiltin) {
  // Override (F 2) with a deliberately wrong template (scaling by 2) and
  // observe that the later definition wins.
  Diagnostics Diags;
  auto Registry = tpl::TemplateRegistry::withBuiltins();
  Registry.addAll(parseTemplateString(R"(
    (template (F 2)
      ($out(0) = 2 * $in(0)
       $out(1) = 2 * $in(1))))",
                                      Diags));
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();

  lower::Expander Exp(Registry, Diags);
  auto Prog = Exp.expand(makeDFT(2), {});
  ASSERT_TRUE(Prog) << Diags.dump();
  vm::Executor VM(*Prog);
  std::vector<Cplx> X = {Cplx(1, 0), Cplx(3, 0)}, Y;
  VM.run(X, Y);
  EXPECT_EQ(Y[0], Cplx(2, 0));
  EXPECT_EQ(Y[1], Cplx(6, 0));
}

TEST(Expander, UserCompositeTemplateFusesLoops) {
  // The paper's loop-fusion example: a template recognizing
  // (compose (tensor (I n) A) (tensor (I n) B)) and emitting one loop.
  Diagnostics Diags;
  auto Registry = tpl::TemplateRegistry::withBuiltins();
  Registry.addAll(parseTemplateString(R"(
    (template (compose (tensor (I n_) A_) (tensor (I n_) B_))
              [A_.in_size == B_.out_size]
      (do $i0 = 0, n_-1
         B_($in, $t0, $i0 * B_.in_size, 0, 1, 1)
         A_($t0, $out, 0, $i0 * A_.out_size, 1, 1)
       end)))",
                                      Diags));
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();

  FormulaRef F = parseFormulaString(
      "(compose (tensor (I 8) (F 2)) (tensor (I 8) (T 2 2)))", Diags);
  ASSERT_TRUE(F) << Diags.dump();

  lower::Expander Exp(Registry, Diags);
  auto Prog = Exp.expand(F, {});
  ASSERT_TRUE(Prog) << Diags.dump();

  // Exactly one loop at the top level (fused), not two.
  int TopLevelLoops = 0, Depth = 0;
  for (const auto &I : Prog->Body) {
    if (I.Opcode == icode::Op::Loop && Depth++ == 0)
      ++TopLevelLoops;
    else if (I.Opcode == icode::Op::End)
      --Depth;
  }
  EXPECT_EQ(TopLevelLoops, 1);

  vm::Executor VM(*Prog);
  std::vector<Cplx> X = randomVector(16), Got;
  VM.run(X, Got);
  std::vector<Cplx> Want = F->toMatrix().apply(X);
  EXPECT_LT(maxAbsDiff(Got, Want), 1e-10);
}

TEST(Expander, ErrorOnUnmatchedFormula) {
  Diagnostics Diags;
  tpl::TemplateRegistry Empty;
  lower::Expander Exp(Empty, Diags);
  auto Prog = Exp.expand(makeDFT(4), {});
  EXPECT_FALSE(Prog);
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
