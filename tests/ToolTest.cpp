//===- tests/ToolTest.cpp - splc command-line tool tests --------------------------==//
//
// Part of the SPL reproduction project. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests that drive the splc binary the way a user would:
/// write an .spl file, invoke the tool, inspect its output and exit code.
/// The binary location comes from the SPLC_PATH compile definition set by
/// the test CMakeLists. Also asserts the documented exit codes
/// (tools/ExitCodes.h) that distinguish usage, parse, compile and
/// execution failures.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>

namespace {

/// True when the ambient environment injects faults (the CI fault-matrix
/// job): healthy-path assertions about native compiles must skip then.
bool faultsArmed() {
  const char *Env = std::getenv("SPL_FAULT");
  return Env && *Env;
}

std::string splcPath() {
#ifdef SPLC_PATH
  return SPLC_PATH;
#else
  return "splc";
#endif
}

std::string splrunPath() {
#ifdef SPLRUN_PATH
  return SPLRUN_PATH;
#else
  return "splrun";
#endif
}

std::string spldPath() {
#ifdef SPLD_PATH
  return SPLD_PATH;
#else
  return "spld";
#endif
}

struct RunResult {
  int ExitCode;
  std::string Output;
};

/// Decodes the raw std::system() wait status into the child's exit code,
/// or -1 if the tool died on a signal.
int exitStatus(const RunResult &R) {
  return WIFEXITED(R.ExitCode) ? WEXITSTATUS(R.ExitCode) : -1;
}

/// Runs a prepared command line, capturing stdout+stderr.
RunResult runCommand(const std::string &Cmd) {
  std::string Out =
      "/tmp/spl-tool-test-" + std::to_string(getpid()) + ".out";
  int RC = std::system((Cmd + " > " + Out + " 2>&1").c_str());
  std::ifstream F(Out);
  std::ostringstream SS;
  SS << F.rdbuf();
  std::remove(Out.c_str());
  return {RC, SS.str()};
}

/// Runs splc with \p Args; stdin/stdout via files.
RunResult runSplc(const std::string &Args, const std::string &Source) {
  std::string In = "/tmp/splc-test-" + std::to_string(getpid()) + ".spl";
  {
    std::ofstream F(In);
    F << Source;
  }
  auto R = runCommand(splcPath() + " " + Args + " " + In);
  std::remove(In.c_str());
  return R;
}

const char *Fft16Source = R"(
(define F4 (compose (tensor (F 2) (I 2)) (T 4 2)
                    (tensor (I 2) (F 2)) (L 4 2)))
#subname fft16
(compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
)";

TEST(Splc, EmitsCByDefault) {
  auto R = runSplc("-B 32", Fft16Source);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("void fft16(double *"), std::string::npos)
      << R.Output.substr(0, 400);
}

TEST(Splc, EmitsFortranOnRequest) {
  auto R = runSplc("-B 8 -l fortran", Fft16Source);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("subroutine fft16 (y,x)"), std::string::npos);
  EXPECT_NE(R.Output.find("implicit real*8 (f)"), std::string::npos);
}

TEST(Splc, OptLevelsChangeOutputSize) {
  auto R0 = runSplc("-B 64 -O0", Fft16Source);
  auto R2 = runSplc("-B 64 -O2", Fft16Source);
  ASSERT_EQ(R0.ExitCode, 0);
  ASSERT_EQ(R2.ExitCode, 0);
  EXPECT_GT(R0.Output.size(), R2.Output.size());
}

TEST(Splc, StatsGoToStderrButStillSucceeds) {
  auto R = runSplc("--stats -B 16", Fft16Source);
  EXPECT_EQ(R.ExitCode, 0);
  // Stats were redirected into the same capture; the line mentions flops.
  EXPECT_NE(R.Output.find("flops="), std::string::npos);
}

TEST(Splc, PrintICodeAddsComments) {
  auto R = runSplc("--print-icode -B 4", "(F 4)");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("/* ; subroutine"), std::string::npos) << R.Output;
}

TEST(Splc, SyntaxErrorsExitNonzeroWithDiagnostics) {
  auto R = runSplc("", "(compose (F 2)");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("error:"), std::string::npos) << R.Output;
}

TEST(Splc, SemanticErrorsAreLocated) {
  auto R = runSplc("", "(compose (F 2) (F 3))");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("size mismatch"), std::string::npos) << R.Output;
}

TEST(Splc, UnknownOptionFails) {
  auto R = runSplc("--frobnicate", "(F 2)");
  EXPECT_EQ(exitStatus(R), 2) << R.Output; // Documented usage exit code.
  // Exactly one diagnostic line names the flag.
  EXPECT_NE(R.Output.find("splc: error: unknown option '--frobnicate'\n"),
            std::string::npos)
      << R.Output;
}

TEST(Splc, ValueFlagWithoutValueSaysSo) {
  // The input file must NOT follow the flag (it would be eaten as the
  // value), so drive splc directly instead of via runSplc.
  for (const char *Flag : {"-o", "--wisdom", "--search-eval"}) {
    auto R = runCommand(splcPath() + " " + Flag);
    EXPECT_EQ(exitStatus(R), 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find(std::string("splc: error: option '") + Flag +
                            "' needs a value"),
              std::string::npos)
        << Flag << " fell through to: " << R.Output;
  }
}

TEST(Splrun, UnknownOptionFails) {
  auto R = runCommand(splrunPath() + " --frobnicate");
  EXPECT_EQ(exitStatus(R), 2) << R.Output;
  EXPECT_NE(R.Output.find("splrun: error: unknown option '--frobnicate'\n"),
            std::string::npos)
      << R.Output;
}

TEST(Splrun, ValueFlagWithoutValueSaysSo) {
  for (const char *Flag : {"--size", "--connect", "--wisdom"}) {
    auto R = runCommand(splrunPath() + " " + Flag);
    EXPECT_EQ(exitStatus(R), 2) << Flag << ": " << R.Output;
    EXPECT_NE(R.Output.find(std::string("splrun: error: ") + Flag +
                            " needs a value"),
              std::string::npos)
        << Flag << " fell through to: " << R.Output;
  }
}

TEST(Splrun, CodegenFlagDiagnostics) {
  auto Missing = runCommand(splrunPath() + " --codegen");
  EXPECT_EQ(exitStatus(Missing), 2) << Missing.Output;
  EXPECT_NE(Missing.Output.find("splrun: error: --codegen needs a value"),
            std::string::npos)
      << Missing.Output;

  auto Bad = runCommand(splrunPath() + " --size 8 --codegen turbo");
  EXPECT_EQ(exitStatus(Bad), 2) << Bad.Output;
  EXPECT_NE(Bad.Output.find("splrun: error: unknown codegen mode 'turbo'"),
            std::string::npos)
      << Bad.Output;
}

TEST(Splc, CodegenFlagDiagnostics) {
  auto Missing = runCommand(splcPath() + " --codegen");
  EXPECT_EQ(exitStatus(Missing), 2) << Missing.Output;
  EXPECT_NE(
      Missing.Output.find("splc: error: option '--codegen' needs a value"),
      std::string::npos)
      << Missing.Output;

  auto Bad = runCommand(splcPath() + " --best-fft 8 --codegen turbo");
  EXPECT_EQ(exitStatus(Bad), 2) << Bad.Output;
  EXPECT_NE(Bad.Output.find("splc: error: unknown codegen mode 'turbo'"),
            std::string::npos)
      << Bad.Output;
}

TEST(Spld, CodegenFlagDiagnostics) {
  auto Missing = runCommand(spldPath() + " --codegen");
  EXPECT_EQ(exitStatus(Missing), 2) << Missing.Output;
  EXPECT_NE(Missing.Output.find("spld: error: --codegen needs a value"),
            std::string::npos)
      << Missing.Output;

  auto Bad = runCommand(spldPath() + " --socket /tmp/never-bound.sock "
                                     "--codegen turbo");
  EXPECT_EQ(exitStatus(Bad), 2) << Bad.Output;
  EXPECT_NE(Bad.Output.find("spld: error: unknown codegen mode 'turbo'"),
            std::string::npos)
      << Bad.Output;
}

TEST(Splrun, VectorCodegenPlansAndVerifies) {
  if (faultsArmed())
    GTEST_SKIP() << "SPL_FAULT armed";
  auto R = runCommand(splrunPath() +
                      " --transform fft --size 16 --batch 6 --threads 2 "
                      "--codegen vector --verify --no-wisdom "
                      "--no-kernel-cache");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_EQ(R.Output.find("FAIL"), std::string::npos) << R.Output;
  // On a SIMD host the plan reports its lanes and the extra vector-vs-
  // scalar verify pass runs; on a scalar-only host the forced-vector spec
  // demotes cleanly and the run still verifies.
  if (R.Output.find("(vector,") != std::string::npos) {
    EXPECT_NE(R.Output.find("verify: vector vs scalar native"),
              std::string::npos)
        << R.Output;
    EXPECT_NE(R.Output.find("bit-identical OK"), std::string::npos)
        << R.Output;
  } else {
    EXPECT_NE(R.Output.find("fell back"), std::string::npos) << R.Output;
  }
}

TEST(Splrun, ScalarISAOverrideDemotesForcedVector) {
  if (faultsArmed())
    GTEST_SKIP() << "SPL_FAULT armed";
  // SPL_VECTOR_ISA=scalar is the CI knob proving vector requests degrade
  // on hosts without SIMD: the plan falls back to scalar native and every
  // verification still passes.
  auto R = runCommand("SPL_VECTOR_ISA=scalar " + splrunPath() +
                      " --transform fft --size 16 --batch 4 "
                      "--codegen vector --verify --no-wisdom "
                      "--no-kernel-cache");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_EQ(R.Output.find("(vector,"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("no SIMD ISA"), std::string::npos) << R.Output;
  EXPECT_EQ(R.Output.find("FAIL"), std::string::npos) << R.Output;
}

TEST(Splc, PartialUnrollFactorAccepted) {
  auto R = runSplc("-u 2", "(tensor (I 8) (F 2))");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("void sub0"), std::string::npos);
}

TEST(Splc, MissingInputFileFailsWithDiagnostic) {
  auto R = runCommand(splcPath() + " /tmp/no-such-spl-input-" +
                      std::to_string(getpid()) + ".spl");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("error: cannot open"), std::string::npos)
      << R.Output;
  // One-line diagnostic, not a stack trace.
  EXPECT_LT(R.Output.size(), 200u) << R.Output;
}

TEST(Splc, DirectoryInputFailsWithDiagnostic) {
  auto R = runCommand(splcPath() + " /tmp");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("is a directory"), std::string::npos) << R.Output;
}

TEST(Splrun, PlansAndVerifiesSmallFft) {
  auto R = runCommand(splrunPath() + " --transform fft --size 16 --batch 8 "
                                     "--threads 2 --verify --no-wisdom");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("plan: fft 16"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("bit-identical OK"), std::string::npos) << R.Output;
}

TEST(Splrun, VmBackendWorksWithoutCompiler) {
  auto R = runCommand(splrunPath() + " --transform wht --size 8 --batch 4 "
                                     "--backend vm --verify --no-wisdom");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("backend vm"), std::string::npos) << R.Output;
}

TEST(Splrun, RejectsBadArguments) {
  auto NoSize = runCommand(splrunPath() + " --transform fft");
  EXPECT_EQ(exitStatus(NoSize), 2) << NoSize.Output;
  EXPECT_NE(NoSize.Output.find("--size"), std::string::npos);

  auto BadBackend =
      runCommand(splrunPath() + " --size 8 --backend turbo");
  EXPECT_EQ(exitStatus(BadBackend), 2) << BadBackend.Output;
  EXPECT_NE(BadBackend.Output.find("unknown backend"), std::string::npos);

  // A well-formed command line whose spec is rejected exits with the
  // distinct parse code, not the usage code.
  auto NonPow2 = runCommand(splrunPath() + " --size 20 --no-wisdom");
  EXPECT_EQ(exitStatus(NonPow2), 3) << NonPow2.Output;
  EXPECT_NE(NonPow2.Output.find("error"), std::string::npos)
      << NonPow2.Output;
}

TEST(Splc, ExitCodesDistinguishFailureStages) {
  // Usage error: unknown flag.
  EXPECT_EQ(exitStatus(runSplc("--frobnicate", "(F 2)")), 2);
  // Parse error: truncated source.
  EXPECT_EQ(exitStatus(runSplc("", "(compose (F 2)")), 3);
  // Parse error: semantic rejection raised while building the formula.
  EXPECT_EQ(exitStatus(runSplc("", "(compose (F 2) (F 3))")), 3);
  // Compile error: parses cleanly, then the pipeline rejects complex
  // constants under #datatype real.
  EXPECT_EQ(exitStatus(runSplc("", "#datatype real\n(T 4 2)")), 4);
  // Success.
  EXPECT_EQ(exitStatus(runSplc("", "(F 2)")), 0);
}

TEST(Splrun, DegradationChainSurvivesInjectedFaults) {
  // Acceptance criterion: with the native compile *and* the VM tier both
  // forced to fail, splrun must fall through to the dense-matrix oracle
  // and still produce a numerically correct (1e-10) verified result.
  auto R = runCommand("SPL_FAULT=native-compile,vm-exec " + splrunPath() +
                      " --transform fft --size 16 --batch 4 --verify "
                      "--no-wisdom");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_NE(R.Output.find("backend oracle"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("oracle backend vs dense fft oracle"),
            std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("OK"), std::string::npos) << R.Output;
  EXPECT_EQ(R.Output.find("FAIL"), std::string::npos) << R.Output;
}

TEST(Splc, UnknownTransformIsUsageError) {
  // Acceptance criterion: --transform dct5 names the supported set and
  // exits with the usage code on both tools.
  auto R = runCommand(splcPath() + " --best-fft 8 --transform dct5");
  EXPECT_EQ(exitStatus(R), 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown transform 'dct5'"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("supported:"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("rdft"), std::string::npos) << R.Output;
}

TEST(Splrun, UnknownTransformIsUsageError) {
  auto R = runCommand(splrunPath() + " --size 8 --transform dct5");
  EXPECT_EQ(exitStatus(R), 2) << R.Output;
  EXPECT_NE(R.Output.find("unknown transform 'dct5'"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("supported:"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("dct4"), std::string::npos) << R.Output;
}

TEST(Splc, RuleTransformsEmitSubroutines) {
  auto R = runCommand(splcPath() + " --best-fft 8 --transform dct3");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_NE(R.Output.find("void dct38"), std::string::npos) << R.Output;
  // wht is registered but enumerated, not rule-expanded; search mode
  // refuses it up front rather than emitting a wrong kernel.
  auto W = runCommand(splcPath() + " --best-fft 8 --transform wht");
  EXPECT_EQ(exitStatus(W), 2) << W.Output;
  EXPECT_NE(W.Output.find("no emit rule"), std::string::npos) << W.Output;
}

TEST(Splrun, RegistryTransformsVerifyAgainstOracles) {
  for (const char *Name : {"rdft", "dct2", "dct3", "dct4"}) {
    auto R = runCommand(splrunPath() + " --transform " + Name +
                        " --size 16 --batch 4 --backend vm --verify "
                        "--no-wisdom");
    EXPECT_EQ(exitStatus(R), 0) << Name << ": " << R.Output;
    EXPECT_NE(R.Output.find(std::string("dense ") + Name + " oracle"),
              std::string::npos)
        << R.Output;
    EXPECT_NE(R.Output.find("OK"), std::string::npos) << R.Output;
    EXPECT_EQ(R.Output.find("FAIL"), std::string::npos) << R.Output;
  }
}

TEST(Splrun, ShapedPlansVerifyAgainstKronOracles) {
  auto R = runCommand(splrunPath() + " --shape 8x4 --batch 2 --backend vm "
                                     "--verify --no-wisdom");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_NE(R.Output.find("fft 8x4"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("dense fft oracle"), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("FAIL"), std::string::npos) << R.Output;

  auto D = runCommand(splrunPath() + " --transform dct2 --shape 4x4 "
                                     "--batch 2 --backend vm --verify "
                                     "--no-wisdom");
  EXPECT_EQ(exitStatus(D), 0) << D.Output;
  EXPECT_NE(D.Output.find("dct2 4x4"), std::string::npos) << D.Output;
  EXPECT_EQ(D.Output.find("FAIL"), std::string::npos) << D.Output;
}

TEST(Splrun, StridedOddBatchVerifies) {
  // The odd-batch strided case from the issue: howmany 7 at stride 3,
  // halfcomplex layout, gathered vectors checked against dense execution.
  auto R = runCommand(splrunPath() + " --transform rdft --size 8 "
                                     "--howmany 7 --stride 3 --backend vm "
                                     "--verify --no-wisdom");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_NE(R.Output.find("(strided)"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("strided batch of 7"), std::string::npos)
      << R.Output;
  EXPECT_EQ(R.Output.find("FAIL"), std::string::npos) << R.Output;

  // Strided layouts are a local-execution feature; the wire ships dense
  // batches only.
  auto C = runCommand(splrunPath() + " --transform rdft --size 8 "
                                     "--howmany 7 --stride 3 "
                                     "--connect /tmp/never-bound.sock");
  EXPECT_EQ(exitStatus(C), 2) << C.Output;
}

TEST(Splrun, RegistryTransformsDegradeUnderInjectedFaults) {
  // SPL_FAULT=native-compile must demote every registry transform to the
  // VM tier and still verify against its dense oracle.
  for (const char *Name : {"rdft", "dct4"}) {
    auto R = runCommand("SPL_FAULT=native-compile " + splrunPath() +
                        " --transform " + Name +
                        " --size 16 --batch 4 --backend native --verify "
                        "--no-wisdom");
    EXPECT_EQ(exitStatus(R), 0) << Name << ": " << R.Output;
    EXPECT_NE(R.Output.find("backend vm"), std::string::npos) << R.Output;
    EXPECT_NE(R.Output.find("fell back"), std::string::npos) << R.Output;
    EXPECT_EQ(R.Output.find("FAIL"), std::string::npos) << R.Output;
  }
}

TEST(Splc, OutputFileOption) {
  std::string OutFile = "/tmp/splc-test-out-" + std::to_string(getpid()) +
                        ".c";
  auto R = runSplc("-o " + OutFile, "(F 2)");
  EXPECT_EQ(R.ExitCode, 0);
  std::ifstream F(OutFile);
  ASSERT_TRUE(F.good());
  std::ostringstream SS;
  SS << F.rdbuf();
  EXPECT_NE(SS.str().find("void sub0"), std::string::npos);
  std::remove(OutFile.c_str());
}

TEST(Splc, VersionPrintsBuildInfo) {
  auto R = runCommand(splcPath() + " --version");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_NE(R.Output.find("splc (spl)"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("built "), std::string::npos) << R.Output;
  // --help documents the flag.
  auto H = runCommand(splcPath() + " --help");
  EXPECT_NE(H.Output.find("--version"), std::string::npos) << H.Output;
}

TEST(Splrun, VersionPrintsBuildInfo) {
  auto R = runCommand(splrunPath() + " --version");
  EXPECT_EQ(exitStatus(R), 0) << R.Output;
  EXPECT_NE(R.Output.find("splrun (spl)"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("built "), std::string::npos) << R.Output;
  auto H = runCommand(splrunPath() + " --help");
  EXPECT_NE(H.Output.find("--version"), std::string::npos) << H.Output;
  EXPECT_NE(H.Output.find("--stats-json"), std::string::npos) << H.Output;
}

TEST(Splc, ProfilePrintsStageTable) {
  auto R = runSplc("--profile -B 16", Fft16Source);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("profile:"), std::string::npos) << R.Output;
  // The table lists the instrumented pipeline stages with their latencies.
  EXPECT_NE(R.Output.find("compile.parse_ns"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("compile.codegen_ns"), std::string::npos)
      << R.Output;
}

TEST(Splrun, StatsJsonAndTraceJsonDumps) {
  std::string Stem = "/tmp/splrun-telemetry-" + std::to_string(getpid());
  std::string StatsPath = Stem + ".json";
  std::string TracePath = Stem + ".trace.json";
  // Cold search (--no-wisdom) guarantees candidates are actually evaluated.
  auto R = runCommand(splrunPath() + " --transform fft --size 16 --batch 4 " +
                      "--no-wisdom --stats-json " + StatsPath +
                      " --trace-json " + TracePath);
  EXPECT_EQ(exitStatus(R), 0) << R.Output;

  std::ifstream SF(StatsPath);
  ASSERT_TRUE(SF.good());
  std::ostringstream SS;
  SS << SF.rdbuf();
  std::string Stats = SS.str();
  std::remove(StatsPath.c_str());
  // The acceptance trio: candidates were evaluated, the execute histogram
  // is populated, and the per-tier demotion counters are present.
  auto numberAfter = [](const std::string &Json,
                        const std::string &Prefix) -> long long {
    auto Pos = Json.find(Prefix);
    if (Pos == std::string::npos)
      return -1;
    return std::atoll(Json.c_str() + Pos + Prefix.size());
  };
  EXPECT_GT(numberAfter(Stats, "\"search.candidates_evaluated\":"), 0)
      << Stats;
  EXPECT_GT(numberAfter(Stats, "\"runtime.execute_ns\":{\"count\":"), 0)
      << Stats;
  EXPECT_GE(numberAfter(Stats, "\"runtime.demote.native\":"), 0) << Stats;
  EXPECT_GE(numberAfter(Stats, "\"runtime.demote.vm\":"), 0) << Stats;

  std::ifstream TF(TracePath);
  ASSERT_TRUE(TF.good());
  std::ostringstream TS;
  TS << TF.rdbuf();
  std::string Trace = TS.str();
  std::remove(TracePath.c_str());
  // A chrome://tracing complete-event array with the pipeline spans.
  ASSERT_FALSE(Trace.empty());
  EXPECT_EQ(Trace.front(), '[');
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"name\":\"plan\""), std::string::npos) << Trace;
  EXPECT_NE(Trace.find("\"name\":\"execute\""), std::string::npos) << Trace;
}

// The docs/KERNEL_CACHE.md worked example, as a test: a cold run compiles
// and populates, a warm run of the same process-external command maps the
// cached kernel with zero compiler invocations.
TEST(Splrun, KernelCacheColdThenWarm) {
  if (faultsArmed())
    GTEST_SKIP() << "SPL_FAULT armed: native compiles are expected to fail";
  std::string Stem = "/tmp/splrun-kcache-" + std::to_string(getpid());
  std::string CacheDir = Stem + ".cache";
  std::string Wisdom = Stem + ".wisdom";
  std::string ColdJson = Stem + ".cold.json";
  std::string WarmJson = Stem + ".warm.json";
  std::string Common = splrunPath() + " --transform fft --size 16 --batch 2" +
                       " --kernel-cache " + CacheDir + " --wisdom " + Wisdom +
                       " --stats-json ";

  auto numberAfter = [](const std::string &Json,
                        const std::string &Prefix) -> long long {
    auto Pos = Json.find(Prefix);
    if (Pos == std::string::npos)
      return -1;
    return std::atoll(Json.c_str() + Pos + Prefix.size());
  };
  auto slurpAndRemove = [](const std::string &Path) {
    std::ifstream In(Path);
    std::ostringstream SS;
    SS << In.rdbuf();
    std::remove(Path.c_str());
    return SS.str();
  };

  auto Cold = runCommand(Common + ColdJson);
  EXPECT_EQ(exitStatus(Cold), 0) << Cold.Output;
  std::string ColdStats = slurpAndRemove(ColdJson);
  // A run that demoted to the VM (no compiler) proves nothing; skip then.
  if (numberAfter(ColdStats, "\"runtime.demote.native\":") > 0) {
    std::filesystem::remove_all(CacheDir);
    std::remove(Wisdom.c_str());
    GTEST_SKIP() << "native backend unavailable; cache has nothing to hold";
  }
  EXPECT_GE(numberAfter(ColdStats, "\"native.compiles\":"), 1) << ColdStats;
  EXPECT_GE(numberAfter(ColdStats, "\"kernelcache.inserts\":"), 1)
      << ColdStats;

  auto Warm = runCommand(Common + WarmJson);
  EXPECT_EQ(exitStatus(Warm), 0) << Warm.Output;
  std::string WarmStats = slurpAndRemove(WarmJson);
  EXPECT_EQ(numberAfter(WarmStats, "\"native.compiles\":"), 0) << WarmStats;
  EXPECT_GE(numberAfter(WarmStats, "\"kernelcache.hits\":"), 1) << WarmStats;

  // --no-kernel-cache bypasses cleanly: compiles again, touches nothing.
  std::string OffJson = Stem + ".off.json";
  auto Off = runCommand(splrunPath() +
                        " --transform fft --size 16 --batch 2" +
                        " --no-kernel-cache --wisdom " + Wisdom +
                        " --stats-json " + OffJson);
  EXPECT_EQ(exitStatus(Off), 0) << Off.Output;
  std::string OffStats = slurpAndRemove(OffJson);
  EXPECT_GE(numberAfter(OffStats, "\"native.compiles\":"), 1) << OffStats;
  EXPECT_EQ(numberAfter(OffStats, "\"kernelcache.hits\":"), 0) << OffStats;

  std::filesystem::remove_all(CacheDir);
  std::remove(Wisdom.c_str());
}

} // namespace
